// Runtime observability: a lock-light registry of named monotonic counters,
// gauges, and log-bucketed wall-clock histograms.
//
// The charged-cost trace layer (trace/trace.hpp) records what the paper's
// model PREDICTS; this registry measures what the machine actually DOES —
// wall-clock phase durations, per-batch stream latencies, fault-recovery
// counters. The two ride side by side in every exporter, but only charged
// costs, outcomes, and attribution are part of the 1-vs-8-thread bit-identity
// contract (DESIGN.md §5, decision 13): wall-clock values are observability
// only and may differ between runs.
//
// Design:
//   * Counters and histograms are sharded per thread: an update touches only
//     the calling thread's shard (relaxed atomics, no lock), and snapshot()
//     merges all shards. Gauges are registry-level (set-semantics does not
//     shard) — one relaxed atomic store per set.
//   * Handles (Counter/Gauge/Histogram) resolve the name once under the
//     registry mutex and are then lock-free to use; create them outside hot
//     loops. The by-name convenience calls (add/set/observe) re-resolve per
//     call and are meant for phase-end granularity.
//   * A disabled registry does NO work: updates return after one relaxed
//     load, no shard is ever allocated, snapshot() is empty. Disabled-mode
//     cost is one branch — near-zero overhead, verified by
//     tests/test_stats.cpp.
//   * Percentile math is util::LogHistogram (util/stats.hpp) — the single
//     implementation shared with the bench harness and SLO reports.
//
// The process-global registry (stats::global()) starts enabled iff the
// MESHSEARCH_STATS environment variable is truthy ("1", "true", "on", ...);
// TraceRecorder mirrors its observations there so one env flag lights up
// end-of-run summaries (examples/example_main.hpp) without any wiring.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "util/stats.hpp"

namespace meshsearch::stats {

/// Merged, point-in-time view of a registry. Entries appear in registration
/// order (deterministic given a deterministic registration sequence).
struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};
struct GaugeSnapshot {
  std::string name;
  double value = 0;
};
struct HistogramSnapshot {
  std::string name;
  util::LogHistogram hist;
};
struct Snapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
};

class StatsRegistry {
 public:
  explicit StatsRegistry(bool enabled = true);
  ~StatsRegistry();
  StatsRegistry(const StatsRegistry&) = delete;
  StatsRegistry& operator=(const StatsRegistry&) = delete;

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Cheap copyable handles. A handle from a disabled registry (or a
  /// default-constructed one) is inert. Handles stay valid for the life of
  /// the registry; create them once, outside hot loops.
  class Counter {
   public:
    Counter() = default;
    void add(std::uint64_t delta = 1) const;

   private:
    friend class StatsRegistry;
    Counter(StatsRegistry* r, std::uint32_t id) : reg_(r), id_(id) {}
    StatsRegistry* reg_ = nullptr;
    std::uint32_t id_ = 0;
  };
  class Gauge {
   public:
    Gauge() = default;
    void set(double value) const;

   private:
    friend class StatsRegistry;
    Gauge(StatsRegistry* r, std::uint32_t id) : reg_(r), id_(id) {}
    StatsRegistry* reg_ = nullptr;
    std::uint32_t id_ = 0;
  };
  class Histogram {
   public:
    Histogram() = default;
    void observe(double value) const;

   private:
    friend class StatsRegistry;
    Histogram(StatsRegistry* r, std::uint32_t id) : reg_(r), id_(id) {}
    StatsRegistry* reg_ = nullptr;
    std::uint32_t id_ = 0;
  };

  /// Resolve (registering on first use) a named instrument. Returns an inert
  /// handle while the registry is disabled — no allocation happens.
  Counter counter(std::string_view name);
  Gauge gauge(std::string_view name);
  Histogram histogram(std::string_view name);

  /// By-name conveniences (resolve + update in one call).
  void add(std::string_view name, std::uint64_t delta = 1) {
    counter(name).add(delta);
  }
  void set(std::string_view name, double value) { gauge(name).set(value); }
  void observe(std::string_view name, double value) {
    histogram(name).observe(value);
  }

  /// Merged view across all thread shards, registration order. Safe to call
  /// concurrently with updates (values are merged with relaxed reads; a
  /// concurrent snapshot sees each update either fully or not at all per
  /// instrument, which is all the exporters need).
  Snapshot snapshot() const;

  /// Number of gauges set via metric-style updates (exporter ordering aid).
  std::size_t gauge_count() const;

  /// Per-thread shards allocated so far — 0 until the first enabled counter
  /// or histogram update; stays 0 forever on a disabled registry (the
  /// disabled-mode zero-allocation check).
  std::size_t shard_count() const;

  /// Zero every value, keep registrations and shards.
  void reset();

  /// Process-wide registry, initially enabled iff MESHSEARCH_STATS is truthy.
  static StatsRegistry& global();

  /// True when MESHSEARCH_STATS is set to a truthy value (read per call).
  static bool env_enabled();

 private:
  struct Shard;
  friend class Counter;
  friend class Gauge;
  friend class Histogram;

  static constexpr std::size_t kBlockSlots = 64;
  static constexpr std::size_t kMaxBlocks = 256;  ///< 16384 ids per kind

  struct NameHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  using NameMap =
      std::unordered_map<std::string, std::uint32_t, NameHash, std::equal_to<>>;

  std::uint32_t intern(std::vector<std::string>& names, NameMap& ids,
                       std::string_view name);
  Shard* shard_for_this_thread();

  std::atomic<bool> enabled_;
  const std::uint64_t uid_;  ///< distinguishes registries in the TLS cache

  mutable std::mutex mu_;  ///< guards registration + shard list
  std::vector<std::string> counter_names_, gauge_names_, hist_names_;
  NameMap counter_ids_, gauge_ids_, hist_ids_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unordered_map<std::thread::id, Shard*> shard_by_thread_;

  /// Gauges: registry-level atomic<double> slots, block-allocated so
  /// existing slots never move while new gauges register.
  struct GaugeBlock {
    std::array<std::atomic<double>, kBlockSlots> v{};
  };
  std::array<std::atomic<GaugeBlock*>, kMaxBlocks> gauge_blocks_{};
  std::vector<std::unique_ptr<GaugeBlock>> gauge_block_owner_;

  std::atomic<double>* gauge_slot(std::uint32_t id, bool create);
};

/// RAII wall-clock timer: observes the elapsed microseconds into
/// `registry.histogram(name)` at scope exit. Skips the clock reads entirely
/// when the registry is disabled at construction.
class ScopedWallTimer {
 public:
  ScopedWallTimer(StatsRegistry& reg, std::string_view name);
  ScopedWallTimer(const ScopedWallTimer&) = delete;
  ScopedWallTimer& operator=(const ScopedWallTimer&) = delete;
  ~ScopedWallTimer();

 private:
  StatsRegistry::Histogram hist_;
  bool armed_ = false;
  std::chrono::steady_clock::time_point begin_;
};

}  // namespace meshsearch::stats
