// Observability layer: per-primitive cost attribution and hierarchical
// phase spans, shared by both engines.
//
// The paper's bounds are time decompositions — Theorem 2's O(sqrt n) is the
// sum/max of band setup, Lemma-1 solves, and the B* sweep — so a single
// opaque Cost total cannot explain where simulated time goes. A
// TraceRecorder captures that decomposition as it happens:
//
//   * per-primitive counters: every charged (counting engine) or measured
//     (cycle engine) primitive execution is recorded as
//     (primitive, submesh size p, steps, calls), aggregated into a
//     histogram keyed by (primitive, p);
//   * an ordered event log of the same records, so two engines running one
//     workload can be compared operation by operation (cross-engine
//     divergence becomes a queryable sequence diff);
//   * hierarchical phase spans (TRACE_SPAN) carrying both simulated-step
//     and wall-clock durations, matching the paper's step numbering.
//
// The recorder is a passive sink: CostModel (mesh/cost.hpp) and the cycle
// engine (mesh/grid.hpp, mesh/cycle_ops.hpp) each take an optional
// TraceRecorder* and record into it when non-null — a null sink costs one
// pointer test per primitive. Exporters for Chrome/Perfetto trace-event
// JSON and flat metrics JSON/CSV live in trace/export.hpp.
//
// Thread-safety: count() may be called from any thread (host-side
// parallel_for regions); spans are single-thread-at-a-time. While the span
// stack is non-empty, only the thread that opened the outermost span may
// begin or end spans — begin_span/end_span enforce this with an always-on
// owning-thread check that throws (never silently corrupts the Perfetto
// export). Ownership resets when the stack empties, so successive phases
// may be driven from different threads. The practical rule: keep SpanScope
// objects outside parallel_for regions; count() inside them is fine.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "trace/stats.hpp"

namespace meshsearch::trace {

/// The mesh primitives both engines account for. The counting engine
/// charges closed-form bounds per primitive; the cycle engine records
/// measured step counts under the same labels.
enum class Primitive : std::uint8_t {
  kSort = 0,
  kScan,
  kRoute,
  kBroadcast,
  kReduce,
  kRar,       ///< random access read (concurrent-read construction)
  kRaw,       ///< random access write with combining
  kCompress,
  kBackoff,   ///< fault-recovery wait between phase retry attempts
  kRebuild,   ///< dynamic-update refresh: re-distributing dirty records
              ///< (and replicas) after an apply_updates batch
};
inline constexpr std::size_t kPrimitiveCount = 10;

const char* primitive_name(Primitive p);

/// Histogram key: which primitive, on how large a (sub)mesh.
struct PrimitiveKey {
  Primitive prim = Primitive::kSort;
  double p = 0;  ///< processors of the charged/measured (sub)mesh

  friend bool operator<(const PrimitiveKey& a, const PrimitiveKey& b) {
    if (a.prim != b.prim) return a.prim < b.prim;
    return a.p < b.p;
  }
  friend bool operator==(const PrimitiveKey&, const PrimitiveKey&) = default;
};

struct PrimitiveStat {
  std::uint64_t calls = 0;
  double steps = 0;  ///< total simulated steps attributed to this key

  friend bool operator==(const PrimitiveStat&, const PrimitiveStat&) = default;
};

/// One recorded primitive execution, in call order.
struct Event {
  Primitive prim = Primitive::kSort;
  double p = 0;
  double steps = 0;
  std::uint64_t calls = 1;
  double sim_begin = 0;  ///< cumulative recorded steps before this event
};

/// A named scalar derived from a run rather than charged by it — throughput
/// counters (queries/step), amortization fractions, batch counts. Metrics
/// ride along in the metrics JSON and at the bottom of metrics_table, where
/// a fraction next to the attribution histogram explains it (e.g. the
/// stream scheduler's amortized-setup share).
struct Metric {
  std::string name;
  double value = 0;

  friend bool operator==(const Metric&, const Metric&) = default;
};

/// One phase span. sim_* are cumulative recorded simulated steps at
/// begin/end (so sim_end - sim_begin is the span's simulated duration under
/// sequential composition); wall_* are microseconds since the recorder was
/// constructed.
struct Span {
  std::string name;
  std::int32_t depth = 0;  ///< nesting depth (0 = top level)
  double sim_begin = 0;
  double sim_end = 0;
  double wall_begin_us = 0;
  double wall_end_us = 0;
  bool closed = false;
};

class TraceRecorder {
 public:
  /// `engine` tags the trace ("counting" / "cycle") in every export.
  explicit TraceRecorder(std::string engine = "counting");

  /// Record `calls` back-to-back executions of `prim` on a p-processor
  /// (sub)mesh costing `steps` simulated steps in total. Thread-safe.
  void count(Primitive prim, double p, double steps, std::uint64_t calls = 1);

  /// Open / close a phase span. Spans nest (LIFO). Prefer TRACE_SPAN /
  /// SpanScope, which pair these calls by scope. Throws std::logic_error
  /// when called from a thread other than the current span-stack owner
  /// (e.g. from inside a parallel_for body while a span is open).
  void begin_span(std::string_view name);
  void end_span();

  const std::string& engine() const { return engine_; }

  /// Cumulative simulated steps recorded so far (all primitives).
  double total_steps() const;

  /// Snapshot of the per-(primitive, p) histogram.
  std::map<PrimitiveKey, PrimitiveStat> counters() const;

  /// Snapshot of the ordered event log.
  std::vector<Event> events() const;

  /// Snapshot of all spans in begin order. Spans still open are reported
  /// with closed == false and sim_end/wall_end_us frozen at "now".
  std::vector<Span> spans() const;

  /// Set (or overwrite) a named scalar metric. Thread-safe; insertion order
  /// is preserved so exported reports read in the order the run emitted.
  /// Backed by a StatsRegistry gauge, so the lookup is hashed (a bench
  /// setting 10k metrics per sweep stays linear, not quadratic) and all
  /// exporters read metrics, counters, and histograms from one source.
  /// Mirrored to the process-global registry when MESHSEARCH_STATS=1.
  void metric(std::string_view name, double value);

  /// Snapshot of the named metrics in first-insertion order.
  std::vector<Metric> metrics() const;

  /// Runtime (wall-clock) stats riding alongside the charged-cost trace.
  /// end_span() records each closed span's wall duration into the histogram
  /// "wall.phase.<name>" (trailing " <number>" suffixes are collapsed so
  /// per-batch spans share one histogram). Wall-clock values are
  /// observability only — they are NOT part of the 1-vs-8-thread
  /// bit-identity contract, which pins outcomes, charges, and attribution
  /// (DESIGN.md §5, decision 13).
  stats::StatsRegistry& stats() { return stats_; }
  const stats::StatsRegistry& stats() const { return stats_; }

  /// Fan-out conveniences: update this recorder's registry and mirror to
  /// the process-global registry when it is enabled (MESHSEARCH_STATS=1).
  void stat_add(std::string_view name, std::uint64_t delta = 1);
  void stat_observe(std::string_view name, double value_us);

 private:
  double wall_now_us() const;

  std::string engine_;
  std::chrono::steady_clock::time_point epoch_;
  stats::StatsRegistry stats_{/*enabled=*/true};
  mutable std::mutex mu_;
  double sim_now_ = 0;
  std::map<PrimitiveKey, PrimitiveStat> counters_;
  std::vector<Event> events_;
  std::vector<Span> spans_;
  std::vector<std::size_t> open_;  ///< stack of indices into spans_
  std::thread::id span_owner_;     ///< owner while open_ is non-empty
};

/// Histogram key for a span name: per-batch spans like "stream.batch 17"
/// collapse to "stream.batch" so one histogram aggregates all batches.
std::string span_histogram_name(std::string_view span_name);

/// Namespace a metric under a tenant: ("acme", "queue_wait") ->
/// "tenant.acme.queue_wait". Characters outside [A-Za-z0-9._-] in the tenant
/// id are replaced with '_' so arbitrary tenant names cannot collide with or
/// corrupt the dotted metric grammar the exporters parse. An empty metric
/// yields the bare prefix "tenant.<id>." for callers that prepend it
/// themselves (record_fault_metrics).
std::string tenant_metric(std::string_view tenant, std::string_view metric);

/// Namespace a metric under a warm engine's circuit breaker:
/// ("dataset/alg1-paper", "trips") -> "service.breaker.dataset_alg1-paper.trips"
/// with the same character sanitization as tenant_metric (the '/' in an
/// engine-key name becomes '_').
std::string breaker_metric(std::string_view engine, std::string_view metric);

/// RAII span guard. A null recorder makes every operation a no-op, so call
/// sites need no branching.
class SpanScope {
 public:
  SpanScope(TraceRecorder* rec, std::string_view name) : rec_(rec) {
    if (rec_ != nullptr) {
      sim_begin_ = rec_->total_steps();
      rec_->begin_span(name);
    }
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;
  ~SpanScope() {
    if (rec_ != nullptr) rec_->end_span();
  }

  /// Simulated steps recorded since this span opened — lets reports (e.g.
  /// BandCostReport) read their numbers back out of the trace.
  double sim_elapsed() const {
    return rec_ != nullptr ? rec_->total_steps() - sim_begin_ : 0.0;
  }

 private:
  TraceRecorder* rec_;
  double sim_begin_ = 0;
};

}  // namespace meshsearch::trace

#define MS_TRACE_CAT_IMPL(a, b) a##b
#define MS_TRACE_CAT(a, b) MS_TRACE_CAT_IMPL(a, b)

/// Open a phase span on `rec` (a TraceRecorder*, may be null) lasting until
/// the end of the enclosing scope: TRACE_SPAN(m.trace, "band_setup");
#define TRACE_SPAN(rec, name)                                     \
  ::meshsearch::trace::SpanScope MS_TRACE_CAT(ms_trace_span_,     \
                                              __LINE__)((rec), (name))
