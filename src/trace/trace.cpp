#include "trace/trace.hpp"

#include "util/check.hpp"

namespace meshsearch::trace {

const char* primitive_name(Primitive p) {
  switch (p) {
    case Primitive::kSort: return "sort";
    case Primitive::kScan: return "scan";
    case Primitive::kRoute: return "route";
    case Primitive::kBroadcast: return "broadcast";
    case Primitive::kReduce: return "reduce";
    case Primitive::kRar: return "rar";
    case Primitive::kRaw: return "raw";
    case Primitive::kCompress: return "compress";
    case Primitive::kBackoff: return "backoff";
    case Primitive::kRebuild: return "rebuild";
  }
  return "unknown";
}

TraceRecorder::TraceRecorder(std::string engine)
    : engine_(std::move(engine)), epoch_(std::chrono::steady_clock::now()) {}

double TraceRecorder::wall_now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceRecorder::count(Primitive prim, double p, double steps,
                          std::uint64_t calls) {
  if (calls == 0) return;
  const std::lock_guard<std::mutex> lock(mu_);
  auto& stat = counters_[PrimitiveKey{prim, p}];
  stat.calls += calls;
  stat.steps += steps;
  events_.push_back(Event{prim, p, steps, calls, sim_now_});
  sim_now_ += steps;
}

void TraceRecorder::begin_span(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (open_.empty()) {
    span_owner_ = std::this_thread::get_id();
  } else {
    MS_CHECK_MSG(span_owner_ == std::this_thread::get_id(),
                 "begin_span from a non-owning thread while spans are open "
                 "(spans are single-thread-at-a-time; keep SpanScope outside "
                 "parallel_for regions — see trace.hpp)");
  }
  Span s;
  s.name = std::string(name);
  s.depth = static_cast<std::int32_t>(open_.size());
  s.sim_begin = sim_now_;
  s.wall_begin_us = wall_now_us();
  open_.push_back(spans_.size());
  spans_.push_back(std::move(s));
}

void TraceRecorder::end_span() {
  std::string name;
  double wall_us = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    MS_CHECK_MSG(!open_.empty(), "end_span without a matching begin_span");
    MS_CHECK_MSG(span_owner_ == std::this_thread::get_id(),
                 "end_span from a non-owning thread while spans are open "
                 "(spans are single-thread-at-a-time; keep SpanScope outside "
                 "parallel_for regions — see trace.hpp)");
    Span& s = spans_[open_.back()];
    open_.pop_back();
    s.sim_end = sim_now_;
    s.wall_end_us = wall_now_us();
    s.closed = true;
    name = s.name;
    wall_us = s.wall_end_us - s.wall_begin_us;
  }
  // Wall-clock phase histogram — outside mu_ (the registry locks for itself
  // and never calls back into the recorder). Observability only: charged
  // cost, outcomes, and attribution are untouched.
  stat_observe(span_histogram_name(name), wall_us);
}

double TraceRecorder::total_steps() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sim_now_;
}

std::map<PrimitiveKey, PrimitiveStat> TraceRecorder::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::vector<Event> TraceRecorder::events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void TraceRecorder::metric(std::string_view name, double value) {
  stats_.set(name, value);
  auto& g = stats::StatsRegistry::global();
  if (g.enabled()) g.set(name, value);
}

std::vector<Metric> TraceRecorder::metrics() const {
  const auto snap = stats_.snapshot();
  std::vector<Metric> out;
  out.reserve(snap.gauges.size());
  for (const auto& g : snap.gauges) out.push_back(Metric{g.name, g.value});
  return out;
}

void TraceRecorder::stat_add(std::string_view name, std::uint64_t delta) {
  stats_.add(name, delta);
  auto& g = stats::StatsRegistry::global();
  if (g.enabled()) g.add(name, delta);
}

void TraceRecorder::stat_observe(std::string_view name, double value_us) {
  stats_.observe(name, value_us);
  auto& g = stats::StatsRegistry::global();
  if (g.enabled()) g.observe(name, value_us);
}

std::string span_histogram_name(std::string_view span_name) {
  // "stream.batch 17" -> "stream.batch": strip one trailing " <digits>".
  std::string_view base = span_name;
  const auto sp = base.find_last_of(' ');
  if (sp != std::string_view::npos && sp + 1 < base.size()) {
    bool digits = true;
    for (std::size_t i = sp + 1; i < base.size(); ++i)
      if (base[i] < '0' || base[i] > '9') {
        digits = false;
        break;
      }
    if (digits) base = base.substr(0, sp);
  }
  std::string out = "wall.phase.";
  out += base;
  return out;
}

namespace {

/// Shared namespacing body: `<prefix><sanitized id>.<metric>` where id
/// characters outside [A-Za-z0-9._-] become '_'.
std::string namespaced_metric(std::string_view prefix, std::string_view id,
                              std::string_view metric) {
  std::string out(prefix);
  out.reserve(out.size() + id.size() + 1 + metric.size());
  for (const char ch : id) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '.' || ch == '_' ||
                    ch == '-';
    out += ok ? ch : '_';
  }
  out += '.';
  out += metric;
  return out;
}

}  // namespace

std::string tenant_metric(std::string_view tenant, std::string_view metric) {
  return namespaced_metric("tenant.", tenant, metric);
}

std::string breaker_metric(std::string_view engine, std::string_view metric) {
  return namespaced_metric("service.breaker.", engine, metric);
}

std::vector<Span> TraceRecorder::spans() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Span> out = spans_;
  const double wall = wall_now_us();
  for (auto& s : out) {
    if (s.closed) continue;
    s.sim_end = sim_now_;
    s.wall_end_us = wall;
  }
  return out;
}

}  // namespace meshsearch::trace
