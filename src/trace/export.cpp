#include "trace/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <ostream>
#include <sstream>

namespace meshsearch::trace {

namespace {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// JSON has no NaN/Inf literals; clamp to null-safe numbers.
std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(15);
  os << v;
  return os.str();
}

}  // namespace

void write_trace_json(const TraceRecorder& rec, std::ostream& os) {
  const auto spans = rec.spans();
  const auto events = rec.events();
  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"engine\":\""
     << escape(rec.engine()) << "\",\"total_steps\":" << num(rec.total_steps())
     << ",\"time_unit\":\"1 us = 1 simulated mesh step\"";
  // Named metrics (stream.*, fault.*), runtime counters, and wall-clock
  // histogram summaries ride in otherData so both JSON formats carry them,
  // not just the flat metrics export. All three read from the recorder's
  // StatsRegistry — one source.
  const auto stats_snap = rec.stats().snapshot();
  os << ",\"metrics\":{";
  bool first_metric = true;
  for (const auto& g : stats_snap.gauges) {
    if (!first_metric) os << ",";
    first_metric = false;
    os << "\"" << escape(g.name) << "\":" << num(g.value);
  }
  os << "},\"counters\":{";
  bool first_counter = true;
  for (const auto& c : stats_snap.counters) {
    if (!first_counter) os << ",";
    first_counter = false;
    os << "\"" << escape(c.name) << "\":" << c.value;
  }
  os << "},\"wall\":{";
  bool first_hist = true;
  for (const auto& h : stats_snap.histograms) {
    if (h.hist.empty()) continue;
    if (!first_hist) os << ",";
    first_hist = false;
    os << "\"" << escape(h.name) << "\":{\"count\":" << h.hist.count()
       << ",\"p50_us\":" << num(h.hist.p50())
       << ",\"p95_us\":" << num(h.hist.p95())
       << ",\"p99_us\":" << num(h.hist.p99())
       << ",\"max_us\":" << num(h.hist.max()) << "}";
  }
  os << "}},\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };
  sep();
  os << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"meshsearch ("
     << escape(rec.engine()) << " engine)\"}}";
  sep();
  os << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"phases\"}}";
  sep();
  os << "{\"ph\":\"M\",\"pid\":0,\"tid\":1,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"primitives\"}}";
  for (const auto& s : spans) {
    sep();
    os << "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"name\":\"" << escape(s.name)
       << "\",\"ts\":" << num(s.sim_begin)
       << ",\"dur\":" << num(s.sim_end - s.sim_begin)
       << ",\"args\":{\"sim_steps\":" << num(s.sim_end - s.sim_begin)
       << ",\"wall_us\":" << num(s.wall_end_us - s.wall_begin_us)
       << ",\"depth\":" << s.depth << (s.closed ? "" : ",\"open\":true")
       << "}}";
  }
  for (const auto& e : events) {
    sep();
    os << "{\"ph\":\"X\",\"pid\":0,\"tid\":1,\"name\":\""
       << primitive_name(e.prim) << " p=" << num(e.p)
       << "\",\"ts\":" << num(e.sim_begin) << ",\"dur\":" << num(e.steps)
       << ",\"args\":{\"p\":" << num(e.p) << ",\"steps\":" << num(e.steps)
       << ",\"calls\":" << e.calls << "}}";
  }
  os << "]}";
}

void write_metrics_json(const TraceRecorder& rec, std::ostream& os) {
  const double total = rec.total_steps();
  os << "{\"engine\":\"" << escape(rec.engine())
     << "\",\"total_steps\":" << num(total) << ",\"primitives\":[";
  bool first = true;
  for (const auto& [key, stat] : rec.counters()) {
    if (!first) os << ",";
    first = false;
    os << "{\"primitive\":\"" << primitive_name(key.prim)
       << "\",\"p\":" << num(key.p) << ",\"calls\":" << stat.calls
       << ",\"steps\":" << num(stat.steps)
       << ",\"share\":" << num(total > 0 ? stat.steps / total : 0) << "}";
  }
  os << "],\"spans\":[";
  first = true;
  for (const auto& s : rec.spans()) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << escape(s.name) << "\",\"depth\":" << s.depth
       << ",\"sim_begin\":" << num(s.sim_begin)
       << ",\"sim_steps\":" << num(s.sim_end - s.sim_begin)
       << ",\"wall_us\":" << num(s.wall_end_us - s.wall_begin_us) << "}";
  }
  const auto stats_snap = rec.stats().snapshot();
  os << "],\"metrics\":[";
  first = true;
  for (const auto& g : stats_snap.gauges) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << escape(g.name) << "\",\"value\":" << num(g.value)
       << "}";
  }
  os << "],\"counters\":[";
  first = true;
  for (const auto& c : stats_snap.counters) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << escape(c.name) << "\",\"value\":" << c.value
       << "}";
  }
  // Wall-clock histograms (observability only — never part of the
  // determinism contract): merged percentiles per histogram name.
  os << "],\"wall_histograms\":[";
  first = true;
  for (const auto& h : stats_snap.histograms) {
    if (h.hist.empty()) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << escape(h.name) << "\",\"count\":" << h.hist.count()
       << ",\"sum_us\":" << num(h.hist.sum())
       << ",\"mean_us\":" << num(h.hist.mean())
       << ",\"min_us\":" << num(h.hist.min())
       << ",\"p50_us\":" << num(h.hist.p50())
       << ",\"p90_us\":" << num(h.hist.p90())
       << ",\"p95_us\":" << num(h.hist.p95())
       << ",\"p99_us\":" << num(h.hist.p99())
       << ",\"max_us\":" << num(h.hist.max()) << "}";
  }
  os << "]}";
}

namespace {

bool write_file(const TraceRecorder& rec, const std::string& path,
                void (*writer)(const TraceRecorder&, std::ostream&)) {
  std::ofstream f(path);
  if (!f.good()) {
    std::cerr << "warning: cannot open trace output " << path << "\n";
    return false;
  }
  writer(rec, f);
  f.flush();
  if (!f.good()) {
    std::cerr << "warning: short write to trace output " << path << "\n";
    return false;
  }
  return true;
}

}  // namespace

bool write_trace_json_file(const TraceRecorder& rec, const std::string& path) {
  return write_file(rec, path, &write_trace_json);
}

bool write_metrics_json_file(const TraceRecorder& rec,
                             const std::string& path) {
  return write_file(rec, path, &write_metrics_json);
}

util::Table metrics_table(const TraceRecorder& rec) {
  util::Table t({"primitive", "p", "calls", "steps", "share"});
  const double total = rec.total_steps();
  for (const auto& [key, stat] : rec.counters())
    t.add_row({std::string(primitive_name(key.prim)), key.p,
               static_cast<std::int64_t>(stat.calls), stat.steps,
               total > 0 ? stat.steps / total : 0.0});
  // Named metrics, runtime counters, and wall-clock percentiles ride below
  // the histogram: the value lands in the "steps" column (it is the row's
  // only number; fractions like metric:stream.setup_fraction read naturally
  // next to the share column). One source: the recorder's StatsRegistry.
  const auto snap = rec.stats().snapshot();
  for (const auto& g : snap.gauges)
    t.add_row({"metric:" + g.name, std::string(), std::string(), g.value,
               std::string()});
  for (const auto& c : snap.counters)
    t.add_row({"counter:" + c.name, std::string(), std::string(),
               static_cast<double>(c.value), std::string()});
  for (const auto& h : snap.histograms) {
    if (h.hist.empty()) continue;
    t.add_row({"wall:" + h.name + ".p50_us", std::string(),
               static_cast<std::int64_t>(h.hist.count()), h.hist.p50(),
               std::string()});
    t.add_row({"wall:" + h.name + ".p95_us", std::string(), std::string(),
               h.hist.p95(), std::string()});
    t.add_row({"wall:" + h.name + ".p99_us", std::string(), std::string(),
               h.hist.p99(), std::string()});
    t.add_row({"wall:" + h.name + ".max_us", std::string(), std::string(),
               h.hist.max(), std::string()});
  }
  return t;
}

}  // namespace meshsearch::trace
