#include "trace/export.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <limits>
#include <ostream>
#include <sstream>

namespace meshsearch::trace {

namespace {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// JSON has no NaN/Inf literals; clamp to null-safe numbers.
std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os.precision(15);
  os << v;
  return os.str();
}

}  // namespace

void write_trace_json(const TraceRecorder& rec, std::ostream& os) {
  const auto spans = rec.spans();
  const auto events = rec.events();
  os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"engine\":\""
     << escape(rec.engine()) << "\",\"total_steps\":" << num(rec.total_steps())
     << ",\"time_unit\":\"1 us = 1 simulated mesh step\"";
  // Named metrics (stream.*, fault.*) ride in otherData so both JSON
  // formats carry them, not just the flat metrics export.
  os << ",\"metrics\":{";
  bool first_metric = true;
  for (const auto& m : rec.metrics()) {
    if (!first_metric) os << ",";
    first_metric = false;
    os << "\"" << escape(m.name) << "\":" << num(m.value);
  }
  os << "}},\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
  };
  sep();
  os << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"meshsearch ("
     << escape(rec.engine()) << " engine)\"}}";
  sep();
  os << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"phases\"}}";
  sep();
  os << "{\"ph\":\"M\",\"pid\":0,\"tid\":1,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"primitives\"}}";
  for (const auto& s : spans) {
    sep();
    os << "{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"name\":\"" << escape(s.name)
       << "\",\"ts\":" << num(s.sim_begin)
       << ",\"dur\":" << num(s.sim_end - s.sim_begin)
       << ",\"args\":{\"sim_steps\":" << num(s.sim_end - s.sim_begin)
       << ",\"wall_us\":" << num(s.wall_end_us - s.wall_begin_us)
       << ",\"depth\":" << s.depth << (s.closed ? "" : ",\"open\":true")
       << "}}";
  }
  for (const auto& e : events) {
    sep();
    os << "{\"ph\":\"X\",\"pid\":0,\"tid\":1,\"name\":\""
       << primitive_name(e.prim) << " p=" << num(e.p)
       << "\",\"ts\":" << num(e.sim_begin) << ",\"dur\":" << num(e.steps)
       << ",\"args\":{\"p\":" << num(e.p) << ",\"steps\":" << num(e.steps)
       << ",\"calls\":" << e.calls << "}}";
  }
  os << "]}";
}

void write_metrics_json(const TraceRecorder& rec, std::ostream& os) {
  const double total = rec.total_steps();
  os << "{\"engine\":\"" << escape(rec.engine())
     << "\",\"total_steps\":" << num(total) << ",\"primitives\":[";
  bool first = true;
  for (const auto& [key, stat] : rec.counters()) {
    if (!first) os << ",";
    first = false;
    os << "{\"primitive\":\"" << primitive_name(key.prim)
       << "\",\"p\":" << num(key.p) << ",\"calls\":" << stat.calls
       << ",\"steps\":" << num(stat.steps)
       << ",\"share\":" << num(total > 0 ? stat.steps / total : 0) << "}";
  }
  os << "],\"spans\":[";
  first = true;
  for (const auto& s : rec.spans()) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << escape(s.name) << "\",\"depth\":" << s.depth
       << ",\"sim_begin\":" << num(s.sim_begin)
       << ",\"sim_steps\":" << num(s.sim_end - s.sim_begin)
       << ",\"wall_us\":" << num(s.wall_end_us - s.wall_begin_us) << "}";
  }
  os << "],\"metrics\":[";
  first = true;
  for (const auto& m : rec.metrics()) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"" << escape(m.name) << "\",\"value\":" << num(m.value)
       << "}";
  }
  os << "]}";
}

namespace {

bool write_file(const TraceRecorder& rec, const std::string& path,
                void (*writer)(const TraceRecorder&, std::ostream&)) {
  std::ofstream f(path);
  if (!f.good()) {
    std::cerr << "warning: cannot open trace output " << path << "\n";
    return false;
  }
  writer(rec, f);
  f.flush();
  if (!f.good()) {
    std::cerr << "warning: short write to trace output " << path << "\n";
    return false;
  }
  return true;
}

}  // namespace

bool write_trace_json_file(const TraceRecorder& rec, const std::string& path) {
  return write_file(rec, path, &write_trace_json);
}

bool write_metrics_json_file(const TraceRecorder& rec,
                             const std::string& path) {
  return write_file(rec, path, &write_metrics_json);
}

util::Table metrics_table(const TraceRecorder& rec) {
  util::Table t({"primitive", "p", "calls", "steps", "share"});
  const double total = rec.total_steps();
  for (const auto& [key, stat] : rec.counters())
    t.add_row({std::string(primitive_name(key.prim)), key.p,
               static_cast<std::int64_t>(stat.calls), stat.steps,
               total > 0 ? stat.steps / total : 0.0});
  // Named metrics ride below the histogram: the value lands in the "steps"
  // column (it is the row's only number; fractions like
  // metric:stream.setup_fraction read naturally next to the share column).
  for (const auto& m : rec.metrics())
    t.add_row({"metric:" + m.name, std::string(), std::string(), m.value,
               std::string()});
  return t;
}

}  // namespace meshsearch::trace
