#include "util/parallel_for.hpp"

#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "util/check.hpp"

namespace meshsearch::util {

namespace {

// Participant flag for the reentrancy rule: set while a thread (pool worker
// or the calling thread acting as participant 0) executes chunk bodies.
// A nested parallel_for issued from such a thread must not touch the pool's
// job_/remaining_ state — the outer job is still live — so it runs serially.
thread_local bool tl_in_region = false;

struct RegionGuard {
  RegionGuard() { tl_in_region = true; }
  ~RegionGuard() { tl_in_region = false; }
};

}  // namespace

unsigned parse_thread_count(const char* text) {
  if (text == nullptr || *text == '\0') return 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || v == 0 || v > 4096) return 0;
  return static_cast<unsigned>(v);
}

unsigned default_thread_count() {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const char* env = std::getenv("MESHSEARCH_THREADS");
  if (env == nullptr || *env == '\0') return hw;
  const unsigned v = parse_thread_count(env);
  if (v == 0) {
    // Warn once: a typo'd knob ("8x", "0") used to silently fall back to
    // hardware concurrency, which reads exactly like the knob working.
    static std::once_flag warned;
    std::call_once(warned, [env, hw] {
      std::cerr << "warning: ignoring invalid MESHSEARCH_THREADS=\"" << env
                << "\" (want an integer in [1, 4096]); using hardware "
                   "concurrency ("
                << hw << ")\n";
    });
    return hw;
  }
  return v;
}

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads ? threads : std::max(1u, std::thread::hardware_concurrency());
  // n total participants: n-1 pool workers + the calling thread.
  errors_.resize(n);
  workers_.reserve(n - 1);
  for (unsigned id = 1; id < n; ++id)
    workers_.emplace_back([this, id] { worker_loop(id); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

bool ThreadPool::in_parallel_region() { return tl_in_region; }

void ThreadPool::run_chunks(const Job& job, unsigned id, unsigned nparticipants) {
  // Static assignment: participant `id` owns chunks id, id+P, id+2P, ...
  const RegionGuard in_region;
  for (std::size_t c = id; c < job.nchunks; c += nparticipants) {
    const std::size_t lo = job.begin + c * job.chunk;
    const std::size_t hi = std::min(job.end, lo + job.chunk);
    try {
      (*job.body)(lo, hi);
    } catch (...) {
      // Record the FIRST throwing chunk this participant hit, then abandon
      // its remaining chunks. parallel_for_chunks rethrows the error with
      // the globally lowest chunk index: each participant's chunks run in
      // ascending order, so the owner of the globally earliest throwing
      // chunk always reaches and records it — which makes the propagated
      // exception the one thrown at the smallest failing index, invariant
      // across thread counts and scheduling.
      errors_[id] = std::current_exception();
      error_chunks_[id] = c;
      break;
    }
  }
}

void ThreadPool::worker_loop(unsigned id) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    run_chunks(job, id, thread_count());
    {
      std::lock_guard lock(mu_);
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for_chunks(std::size_t begin, std::size_t end,
                                     const ChunkBody& body, std::size_t grain) {
  if (begin >= end) return;
  if (tl_in_region) {
    // Nested call from inside a running body (this pool's or another's):
    // the outer job owns the pool state, so run serially right here.
    // Exceptions propagate to the outer run_chunks, which records them.
    body(begin, end);
    return;
  }
  const std::size_t count = end - begin;
  const unsigned p = thread_count();
  if (p == 1 || count <= std::max<std::size_t>(grain, 1)) {
    body(begin, end);
    return;
  }
  const std::size_t chunk = std::max<std::size_t>(
      std::max<std::size_t>(grain, 1), (count + 4 * p - 1) / (4 * p));
  Job job;
  job.begin = begin;
  job.end = end;
  job.chunk = chunk;
  job.nchunks = (count + chunk - 1) / chunk;
  job.body = &body;
  {
    std::lock_guard lock(mu_);
    for (auto& e : errors_) e = nullptr;
    error_chunks_.assign(errors_.size(), 0);
    job_ = job;
    remaining_ = static_cast<unsigned>(workers_.size());
    ++epoch_;
  }
  cv_start_.notify_all();
  run_chunks(job, 0, p);  // the calling thread participates as id 0
  {
    std::unique_lock lock(mu_);
    cv_done_.wait(lock, [&] { return remaining_ == 0; });
  }
  // Deterministic propagation: rethrow the error from the lowest chunk
  // index, not from the lowest participant id (which chunk a participant
  // owns depends on the thread count).
  std::size_t winner = errors_.size();
  for (std::size_t i = 0; i < errors_.size(); ++i)
    if (errors_[i] &&
        (winner == errors_.size() || error_chunks_[i] < error_chunks_[winner]))
      winner = i;
  if (winner != errors_.size()) std::rethrow_exception(errors_[winner]);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  const ChunkBody chunked = [&body](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  };
  parallel_for_chunks(begin, end, chunked, grain);
}

namespace {

std::mutex& global_pool_mutex() {
  static std::mutex mu;
  return mu;
}

std::unique_ptr<ThreadPool>& global_pool_slot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard lock(global_pool_mutex());
  auto& slot = global_pool_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(default_thread_count());
  return *slot;
}

void ThreadPool::set_global_threads(unsigned threads) {
  MS_CHECK_MSG(!tl_in_region,
               "set_global_threads from inside a parallel region");
  std::lock_guard lock(global_pool_mutex());
  auto& slot = global_pool_slot();
  slot.reset();  // join the old workers before building the replacement
  slot = std::make_unique<ThreadPool>(threads ? threads
                                              : default_thread_count());
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  if (begin >= end) return;  // inverted ranges are empty, not a huge count
  if (end - begin < 2 * std::max<std::size_t>(grain, 1)) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  ThreadPool::global().parallel_for(begin, end, body, grain);
}

}  // namespace meshsearch::util
