#include "util/parallel_for.hpp"

#include <algorithm>
#include <atomic>

#include "util/check.hpp"

namespace meshsearch::util {

ThreadPool::ThreadPool(unsigned threads) {
  unsigned n = threads ? threads : std::max(1u, std::thread::hardware_concurrency());
  // n total participants: n-1 pool workers + the calling thread.
  errors_.resize(n);
  workers_.reserve(n - 1);
  for (unsigned id = 1; id < n; ++id)
    workers_.emplace_back([this, id] { worker_loop(id); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_chunks(const Job& job, unsigned id, unsigned nparticipants) {
  // Static assignment: participant `id` owns chunks id, id+P, id+2P, ...
  try {
    for (std::size_t c = id; c < job.nchunks; c += nparticipants) {
      const std::size_t lo = job.begin + c * job.chunk;
      const std::size_t hi = std::min(job.end, lo + job.chunk);
      for (std::size_t i = lo; i < hi; ++i) (*job.body)(i);
    }
  } catch (...) {
    errors_[id] = std::current_exception();
  }
}

void ThreadPool::worker_loop(unsigned id) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    Job job;
    {
      std::unique_lock lock(mu_);
      cv_start_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
      job = job_;
    }
    run_chunks(job, id, thread_count());
    {
      std::lock_guard lock(mu_);
      if (--remaining_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (begin >= end) return;
  const std::size_t count = end - begin;
  const unsigned p = thread_count();
  if (p == 1 || count <= grain) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const std::size_t chunk = std::max<std::size_t>(grain, (count + 4 * p - 1) / (4 * p));
  Job job;
  job.begin = begin;
  job.end = end;
  job.chunk = chunk;
  job.nchunks = (count + chunk - 1) / chunk;
  job.body = &body;
  {
    std::lock_guard lock(mu_);
    for (auto& e : errors_) e = nullptr;
    job_ = job;
    remaining_ = static_cast<unsigned>(workers_.size());
    ++epoch_;
  }
  cv_start_.notify_all();
  run_chunks(job, 0, p);  // the calling thread participates as id 0
  {
    std::unique_lock lock(mu_);
    cv_done_.wait(lock, [&] { return remaining_ == 0; });
  }
  for (auto& e : errors_)
    if (e) std::rethrow_exception(e);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  if (end - begin < 2 * grain) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  ThreadPool::global().parallel_for(begin, end, body, grain);
}

}  // namespace meshsearch::util
