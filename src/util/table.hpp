// Table/CSV emitter used by the benchmark harness to print paper-style
// result tables (aligned text on stdout, optional CSV mirror on disk).
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace meshsearch::util {

class Table {
 public:
  using Cell = std::variant<std::string, double, std::int64_t>;

  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<Cell> cells);

  /// Render as an aligned text table.
  void print(std::ostream& os) const;

  /// Render as CSV.
  void write_csv(std::ostream& os) const;
  void write_csv_file(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

  /// Structured access for the machine-readable bench report (BENCH_*.json):
  /// column headers and raw cells in insertion order.
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<Cell>>& row_data() const { return rows_; }

 private:
  static std::string render(const Cell& c);
  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace meshsearch::util
