// Minimal JSON value + recursive-descent parser, dependency-free.
//
// Exists for the observability tooling: bench_check reads committed
// BENCH_*.json baselines back in, and the tests validate that every exporter
// (trace JSON, metrics JSON, BENCH_*.json) emits well-formed JSON. It is a
// reader for files this repo itself writes — full RFC 8259 syntax is
// accepted, but no attempt is made at streaming, comments, or incremental
// parsing.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace meshsearch::util {

class JsonValue {
 public:
  enum class Kind : std::uint8_t {
    kNull = 0,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<JsonValue>& as_array() const { return array_; }
  /// Object members in document order (duplicate keys keep the last value).
  const std::vector<std::pair<std::string, JsonValue>>& as_object() const {
    return object_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Conveniences with defaults — `get_number("threads", 1)` style.
  double get_number(std::string_view key, double fallback = 0) const;
  std::string get_string(std::string_view key,
                         std::string fallback = {}) const;

  static JsonValue make_null() { return JsonValue{}; }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double n);
  static JsonValue make_string(std::string s);
  static JsonValue make_array(std::vector<JsonValue> a);
  static JsonValue make_object(
      std::vector<std::pair<std::string, JsonValue>> o);

  /// Serialize back to JSON text. indent < 0 renders compact; indent >= 0
  /// pretty-prints with that many spaces per level (committed baselines use
  /// 2 so git diffs stay reviewable). Non-finite numbers render as null —
  /// round-tripping through parse_json otherwise preserves the document.
  std::string dump(int indent = -1) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

struct JsonParseResult {
  bool ok = false;
  std::string error;      ///< human-readable message with offset when !ok
  JsonValue value;
};

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Never throws.
JsonParseResult parse_json(std::string_view text);

/// Read and parse a JSON file. !ok with an I/O message when unreadable.
JsonParseResult parse_json_file(const std::string& path);

}  // namespace meshsearch::util
