// Typed error taxonomy for meshsearch.
//
// Every error the library throws on purpose derives from meshsearch::Error
// and carries structured context — which engine, which phase, which
// site/band, and (for fault-driven errors) the fault seed and occurrence —
// so a failure can be replayed from the error alone. The taxonomy:
//
//   * InvalidInputError  — malformed input rejected at a public entry point
//     (multisearch/validate.hpp) before any phase is charged. Caller bug.
//   * CapacityError      — structurally valid input that exceeds a declared
//     limit (batch larger than mesh capacity, degree above kMaxDegree).
//     Caller can split/shrink and retry.
//   * IntegrityError     — data failed an end-to-end check: a payload
//     checksum mismatch that survived the retransmit path, or a paranoid
//     shadow-oracle divergence. Simulator bug or unrecovered corruption;
//     never retryable by the caller.
//   * CheckFailedError   — an MS_CHECK internal invariant tripped. Always a
//     library bug.
//   * mesh::FaultExhaustedError (mesh/fault.hpp) — an injected-fault retry
//     budget ran out. Expected under armed fault plans; the stream
//     scheduler catches it and degrades/re-plans.
//
// Error derives from std::logic_error (not std::runtime_error) because the
// MS_CHECK contract predates this taxonomy: a large body of tests and
// callers pins `std::logic_error` as the thing the library throws, and the
// taxonomy must slot under it without breaking them. The subclasses are the
// real vocabulary; the std:: base is compatibility plumbing.
#pragma once

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

namespace meshsearch {

/// Structured context attached to every meshsearch::Error. Empty strings /
/// negative band / has_seed=false mean "not applicable" and are omitted
/// from the formatted what() text.
struct ErrorContext {
  std::string engine;  ///< e.g. "alg1-paper", "stream", "cycle"
  std::string phase;   ///< e.g. "phase.step2", "route", "paranoid-audit"
  std::string site;    ///< throw site: file:line, draw-site name, ...
  std::int64_t band = -1;            ///< band / submesh index, -1 = n/a
  std::uint64_t seed = 0;            ///< fault-plan seed (if has_seed)
  std::uint64_t occurrence = 0;      ///< per-site draw occurrence counter
  bool has_seed = false;             ///< seed/occurrence fields are live
};

namespace detail {

/// what() text = message + bracketed key=value context, so the full replay
/// coordinates survive even through a bare catch (std::exception&).
inline std::string format_error(const std::string& message,
                                const ErrorContext& ctx) {
  std::ostringstream os;
  os << message;
  bool open = false;
  const auto sep = [&]() -> const char* {
    if (open) return " ";
    open = true;
    return " [";
  };
  const auto field = [&](const char* key, const std::string& value) {
    if (!value.empty()) os << sep() << key << '=' << value;
  };
  field("engine", ctx.engine);
  field("phase", ctx.phase);
  field("site", ctx.site);
  if (ctx.band >= 0) os << sep() << "band=" << ctx.band;
  if (ctx.has_seed)
    os << sep() << "seed=" << ctx.seed << " occurrence=" << ctx.occurrence;
  if (open) os << ']';
  return os.str();
}

}  // namespace detail

/// Base of the taxonomy. Catch this to handle any deliberate meshsearch
/// failure; catch a subclass to handle one class of failure.
class Error : public std::logic_error {
 public:
  explicit Error(const std::string& message, ErrorContext ctx = {})
      : std::logic_error(detail::format_error(message, ctx)),
        message_(message),
        ctx_(std::move(ctx)) {}

  /// The raw message without the bracketed context suffix.
  const std::string& message() const noexcept { return message_; }
  const ErrorContext& context() const noexcept { return ctx_; }

 private:
  std::string message_;
  ErrorContext ctx_;
};

/// Malformed input rejected at a public entry point, before any phase is
/// charged (multisearch/validate.hpp).
class InvalidInputError : public Error {
 public:
  using Error::Error;
};

/// Structurally valid input exceeding a declared limit; split or shrink
/// and retry.
class CapacityError : public Error {
 public:
  using Error::Error;
};

/// Data failed an end-to-end integrity check (payload checksum survived the
/// retransmit path wrong, or the paranoid shadow oracle diverged).
class IntegrityError : public Error {
 public:
  using Error::Error;
};

/// An MS_CHECK internal invariant tripped — always a library bug.
class CheckFailedError : public Error {
 public:
  using Error::Error;
};

/// A query was shed by the overload-protection layer: its virtual queue
/// wait exceeded its tenant's SloPolicy deadline, so it was dropped BEFORE
/// dispatch instead of being served late (src/service/). A shed query is a
/// reported outcome, never a silent drop: its ticket resolves to kShed,
/// the completion callback fires with shed=true, and result() throws this
/// error. Carries the tenant, the engine's dataset, the admission clock and
/// the deadline so the shed decision can be reconstructed from the error
/// alone (shed happens exactly when shed_steps - admitted_steps > deadline).
class DeadlineExceededError : public Error {
 public:
  DeadlineExceededError(std::string tenant, std::string dataset,
                        double admitted_steps, double deadline_steps,
                        double shed_steps, ErrorContext ctx = {})
      : Error(
            [&] {
              std::ostringstream os;
              os << "query shed: tenant '" << tenant << "' on dataset '"
                 << dataset << "' waited "
                 << (shed_steps - admitted_steps)
                 << " virtual steps (admitted at " << admitted_steps
                 << ", shed at " << shed_steps << ") past its deadline of "
                 << deadline_steps << " steps";
              return os.str();
            }(),
            std::move(ctx)),
        tenant_(std::move(tenant)),
        dataset_(std::move(dataset)),
        admitted_steps_(admitted_steps),
        deadline_steps_(deadline_steps),
        shed_steps_(shed_steps) {}

  const std::string& tenant() const noexcept { return tenant_; }
  const std::string& dataset() const noexcept { return dataset_; }
  double admitted_steps() const noexcept { return admitted_steps_; }
  double deadline_steps() const noexcept { return deadline_steps_; }
  double shed_steps() const noexcept { return shed_steps_; }

 private:
  std::string tenant_;
  std::string dataset_;
  double admitted_steps_ = 0;
  double deadline_steps_ = 0;
  double shed_steps_ = 0;
};

/// A submit was refused by per-tenant backpressure: the tenant's pending
/// queue is at its SloPolicy::max_queue watermark, so admitting more would
/// only grow a queue whose tail is doomed to shed anyway. A CapacityError
/// (the caller can retry later) extended with a structured retry-after
/// hint in VIRTUAL steps, derived from the tenant's deficit-round-robin
/// round estimate — an estimate, not a guarantee, but a deterministic one.
class BackpressureError : public CapacityError {
 public:
  BackpressureError(const std::string& message, double retry_after_steps,
                    std::size_t queued, std::size_t max_queue,
                    ErrorContext ctx = {})
      : CapacityError(
            [&] {
              std::ostringstream os;
              os << message << " (queued " << queued << " of max " << max_queue
                 << ", retry after ~" << retry_after_steps
                 << " virtual steps)";
              return os.str();
            }(),
            std::move(ctx)),
        retry_after_steps_(retry_after_steps),
        queued_(queued),
        max_queue_(max_queue) {}

  double retry_after_steps() const noexcept { return retry_after_steps_; }
  std::size_t queued() const noexcept { return queued_; }
  std::size_t max_queue() const noexcept { return max_queue_; }

 private:
  double retry_after_steps_ = 0;
  std::size_t queued_ = 0;
  std::size_t max_queue_ = 0;
};

/// A dispatch was refused by an open circuit breaker: the engine's last N
/// consecutive batches degraded or faulted, so the service fails fast (no
/// charge, no retry-budget burn) instead of feeding more work to an engine
/// that is currently failing everything. Recoverable: the breaker half-opens
/// a probe batch on the next scheduling round, and a successful probe closes
/// it again. Carries the engine identity (dataset + kind) and the failure
/// streak that tripped it.
class CircuitOpenError : public Error {
 public:
  CircuitOpenError(std::string dataset, std::string engine_kind,
                   std::uint32_t consecutive_failures, ErrorContext ctx = {})
      : Error(
            [&] {
              std::ostringstream os;
              os << "circuit breaker open for engine '" << dataset << '/'
                 << engine_kind << "' after " << consecutive_failures
                 << " consecutive degraded/faulted batches (half-open probe "
                    "next round)";
              return os.str();
            }(),
            std::move(ctx)),
        dataset_(std::move(dataset)),
        engine_kind_(std::move(engine_kind)),
        consecutive_failures_(consecutive_failures) {}

  const std::string& dataset() const noexcept { return dataset_; }
  const std::string& engine_kind() const noexcept { return engine_kind_; }
  std::uint32_t consecutive_failures() const noexcept {
    return consecutive_failures_;
  }

 private:
  std::string dataset_;
  std::string engine_kind_;
  std::uint32_t consecutive_failures_ = 0;
};

/// A warm engine was asked to serve against a structure that has been
/// mutated since the engine was prepared (or refreshed). An IntegrityError
/// — serving would return answers for a dataset that no longer exists —
/// but a *recoverable* one: call refresh() on the engine (or rebuild it)
/// and retry. Carries the dataset name and both generation stamps so the
/// divergence is diagnosable from the error alone.
class StaleEngineError : public IntegrityError {
 public:
  StaleEngineError(std::string dataset, std::uint64_t structure_generation,
                   std::uint64_t prepared_generation, ErrorContext ctx = {})
      : IntegrityError(
            [&] {
              std::ostringstream os;
              os << "stale warm engine for dataset '" << dataset
                 << "': structure at generation " << structure_generation
                 << ", engine prepared at generation " << prepared_generation
                 << " (refresh the engine before serving)";
              return os.str();
            }(),
            std::move(ctx)),
        dataset_(std::move(dataset)),
        structure_generation_(structure_generation),
        prepared_generation_(prepared_generation) {}

  const std::string& dataset() const noexcept { return dataset_; }
  std::uint64_t structure_generation() const noexcept {
    return structure_generation_;
  }
  std::uint64_t prepared_generation() const noexcept {
    return prepared_generation_;
  }

 private:
  std::string dataset_;
  std::uint64_t structure_generation_ = 0;
  std::uint64_t prepared_generation_ = 0;
};

}  // namespace meshsearch
