#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace meshsearch::util {

std::size_t LogHistogram::bucket_index(double v) {
  if (!(v > kMinValue)) return 0;  // NaN and tiny values collapse into 0
  // Bucket 1 + k holds values in (kMinValue * 2^(k/S), kMinValue * 2^((k+1)/S)].
  const double octaves = std::log2(v / kMinValue);
  const auto k = static_cast<std::int64_t>(
      std::ceil(octaves * static_cast<double>(kSubBuckets)) - 1);
  const auto idx = static_cast<std::size_t>(std::max<std::int64_t>(0, k)) + 1;
  return std::min(idx, kBucketCount - 1);
}

double LogHistogram::bucket_upper(std::size_t i) {
  if (i == 0) return kMinValue;
  return kMinValue *
         std::exp2(static_cast<double>(i) / static_cast<double>(kSubBuckets));
}

double LogHistogram::bucket_value(std::size_t i) {
  if (i == 0) return kMinValue;
  // Geometric midpoint of (upper(i-1), upper(i)] — halves the worst-case
  // relative error vs reporting the bucket edge.
  return kMinValue * std::exp2((static_cast<double>(i) - 0.5) /
                               static_cast<double>(kSubBuckets));
}

void LogHistogram::observe(double v, std::uint64_t times) {
  if (times == 0) return;
  if (!(v >= 0)) v = 0;  // negative and NaN clamp to 0
  buckets_[bucket_index(v)] += times;
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  count_ += times;
  sum_ += v * static_cast<double>(times);
}

void LogHistogram::add_bucket(std::size_t i, std::uint64_t count) {
  MS_CHECK(i < kBucketCount);
  if (count == 0) return;
  const double v = bucket_value(i);
  buckets_[i] += count;
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  count_ += count;
  sum_ += v * static_cast<double>(count);
}

void LogHistogram::merge(const LogHistogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void LogHistogram::override_moments(double sum, double min, double max) {
  if (count_ == 0) return;
  sum_ = sum;
  min_ = min;
  max_ = max;
}

double LogHistogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double LogHistogram::percentile(double q) const {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  const std::uint64_t target = std::max<std::uint64_t>(1, rank);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cum += buckets_[i];
    if (cum >= target)
      return std::clamp(bucket_value(i), min_, max_);
  }
  return max_;
}

Summary summarize(std::span<const double> xs) {
  // No full sort: moments come from linear passes, the exact median from a
  // selection (nth_element), and p50-p99 from LogHistogram — which is THE
  // percentile implementation (bucketed estimates, same path the streaming
  // wall-clock stats use), not a second exact one to keep in sync.
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  s.min = *mn;
  s.max = *mx;
  double sum = 0;
  LogHistogram h;
  for (double x : xs) {
    sum += x;
    h.observe(x);
  }
  s.mean = sum / static_cast<double>(xs.size());
  double var = 0;
  for (double x : xs) var += (x - s.mean) * (x - s.mean);
  s.stddev = xs.size() > 1
                 ? std::sqrt(var / static_cast<double>(xs.size() - 1))
                 : 0.0;
  std::vector<double> sel(xs.begin(), xs.end());
  const std::size_t mid = sel.size() / 2;
  std::nth_element(sel.begin(),
                   sel.begin() + static_cast<std::ptrdiff_t>(mid), sel.end());
  if (sel.size() % 2 == 1) {
    s.median = sel[mid];
  } else {
    // nth_element leaves the lower half (unordered) before `mid`; its max
    // is the other middle order statistic.
    const double lo =
        *std::max_element(sel.begin(),
                          sel.begin() + static_cast<std::ptrdiff_t>(mid));
    s.median = 0.5 * (lo + sel[mid]);
  }
  s.p50 = h.p50();
  s.p90 = h.p90();
  s.p95 = h.p95();
  s.p99 = h.p99();
  return s;
}

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  MS_CHECK(xs.size() == ys.size());
  MS_CHECK(xs.size() >= 2);
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  LinearFit f;
  const double denom = n * sxx - sx * sx;
  MS_CHECK_MSG(denom != 0, "degenerate x values in fit_linear");
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - (f.intercept + f.slope * xs[i]);
    ss_res += e * e;
  }
  f.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

PowerFit fit_power(std::span<const double> xs, std::span<const double> ys) {
  MS_CHECK(xs.size() == ys.size());
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    MS_CHECK_MSG(xs[i] > 0 && ys[i] > 0, "fit_power requires positive data");
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  const LinearFit lf = fit_linear(lx, ly);
  return PowerFit{lf.intercept, lf.slope, lf.r2};
}

std::vector<std::size_t> geometric_sizes(std::size_t base, double ratio,
                                         std::size_t count) {
  MS_CHECK(base > 0 && ratio > 1.0);
  std::vector<std::size_t> sizes;
  sizes.reserve(count);
  double n = static_cast<double>(base);
  for (std::size_t i = 0; i < count; ++i) {
    sizes.push_back(static_cast<std::size_t>(n));
    n *= ratio;
  }
  return sizes;
}

}  // namespace meshsearch::util
