#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace meshsearch::util {

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  double sum = 0;
  for (double x : sorted) sum += x;
  s.mean = sum / static_cast<double>(sorted.size());
  double var = 0;
  for (double x : sorted) var += (x - s.mean) * (x - s.mean);
  s.stddev = sorted.size() > 1
                 ? std::sqrt(var / static_cast<double>(sorted.size() - 1))
                 : 0.0;
  const std::size_t mid = sorted.size() / 2;
  s.median = sorted.size() % 2 == 1
                 ? sorted[mid]
                 : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return s;
}

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  MS_CHECK(xs.size() == ys.size());
  MS_CHECK(xs.size() >= 2);
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  LinearFit f;
  const double denom = n * sxx - sx * sx;
  MS_CHECK_MSG(denom != 0, "degenerate x values in fit_linear");
  f.slope = (n * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double e = ys[i] - (f.intercept + f.slope * xs[i]);
    ss_res += e * e;
  }
  f.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

PowerFit fit_power(std::span<const double> xs, std::span<const double> ys) {
  MS_CHECK(xs.size() == ys.size());
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    MS_CHECK_MSG(xs[i] > 0 && ys[i] > 0, "fit_power requires positive data");
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  const LinearFit lf = fit_linear(lx, ly);
  return PowerFit{lf.intercept, lf.slope, lf.r2};
}

std::vector<std::size_t> geometric_sizes(std::size_t base, double ratio,
                                         std::size_t count) {
  MS_CHECK(base > 0 && ratio > 1.0);
  std::vector<std::size_t> sizes;
  sizes.reserve(count);
  double n = static_cast<double>(base);
  for (std::size_t i = 0; i < count; ++i) {
    sizes.push_back(static_cast<std::size_t>(n));
    n *= ratio;
  }
  return sizes;
}

}  // namespace meshsearch::util
