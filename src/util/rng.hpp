// Deterministic random number generation for workloads and tests.
//
// All randomness in meshsearch flows through Rng so that every experiment
// is reproducible from a single 64-bit seed. The core generator is
// xoshiro256** seeded via splitmix64 (public-domain constructions by
// Blackman & Vigna / Steele et al.).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace meshsearch::util {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless mix of a 64-bit value (one splitmix64 round).
std::uint64_t mix64(std::uint64_t x);

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_range(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double uniform_real();

  /// True with probability p.
  bool bernoulli(double p);

  /// Derive an independent child generator (for per-thread determinism).
  Rng split();

 private:
  std::array<std::uint64_t, 4> s_;
};

/// Zipf(s) sampler over {0, .., n-1}: rank-frequency skew used to model
/// congested query distributions (many queries hitting few graph pieces).
class Zipf {
 public:
  Zipf(std::size_t n, double s);
  std::size_t operator()(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // normalized cumulative weights
};

/// Random permutation of {0, .., n-1}.
std::vector<std::uint32_t> random_permutation(std::size_t n, Rng& rng);

}  // namespace meshsearch::util
