#include "util/table.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace meshsearch::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MS_CHECK(!headers_.empty());
}

Table& Table::add_row(std::vector<Cell> cells) {
  MS_CHECK_MSG(cells.size() == headers_.size(), "row width != header width");
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::render(const Cell& c) {
  if (std::holds_alternative<std::string>(c)) return std::get<std::string>(c);
  if (std::holds_alternative<std::int64_t>(c))
    return std::to_string(std::get<std::int64_t>(c));
  const double v = std::get<double>(c);
  std::ostringstream os;
  if (v != 0 && (std::fabs(v) >= 1e7 || std::fabs(v) < 1e-3))
    os << std::scientific << std::setprecision(3) << v;
  else
    os << std::fixed << std::setprecision(3) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      r.push_back(render(row[c]));
      widths[c] = std::max(widths[c], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      os << (c ? "  " : "") << std::setw(static_cast<int>(widths[c]))
         << cells[c];
    os << '\n';
  };
  line(headers_);
  std::vector<std::string> rule;
  for (auto w : widths) rule.push_back(std::string(w, '-'));
  line(rule);
  for (const auto& r : rendered) line(r);
}

void Table::write_csv(std::ostream& os) const {
  auto esc = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << esc(headers_[c]);
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << esc(render(row[c]));
    os << '\n';
  }
}

void Table::write_csv_file(const std::string& path) const {
  std::ofstream f(path);
  MS_CHECK_MSG(f.good(), "cannot open " + path);
  write_csv(f);
}

}  // namespace meshsearch::util
