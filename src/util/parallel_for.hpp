// Host-side data parallelism for the simulator.
//
// The mesh algorithms frequently say "independently and in parallel on each
// submesh"; the simulator exploits that real concurrency with a small
// persistent thread pool. Static chunking keeps the simulation bit-exact
// regardless of thread count: the partition of indices across workers never
// depends on timing, and workers never share mutable state.
//
// NOTE: parallel_for accelerates wall-clock time only. Simulated mesh step
// counts are computed analytically and are identical with 1 or N threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace meshsearch::util {

/// Persistent thread pool executing [begin, end) index ranges.
class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Run body(i) for i in [begin, end), statically chunked across workers.
  /// Blocks until all iterations complete. Exceptions from body propagate
  /// (the first one thrown, by worker index order).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// Process-wide pool, created on first use.
  static ThreadPool& global();

 private:
  struct Job {
    std::size_t begin = 0, end = 0, chunk = 0, nchunks = 0;
    const std::function<void(std::size_t)>* body = nullptr;
  };

  void worker_loop(unsigned id);
  void run_chunks(const Job& job, unsigned id, unsigned nparticipants);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_, cv_done_;
  Job job_;
  std::uint64_t epoch_ = 0;       // incremented per parallel_for call
  unsigned remaining_ = 0;        // workers still running current epoch
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;
};

/// Convenience: run body(i) over [begin, end) on the global pool.
/// Falls back to a serial loop for tiny ranges.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

}  // namespace meshsearch::util
