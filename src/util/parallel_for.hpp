// Host-side data parallelism for the simulator.
//
// The mesh algorithms frequently say "independently and in parallel on each
// submesh"; the simulator exploits that real concurrency with a small
// persistent thread pool. Static chunking keeps the simulation bit-exact
// regardless of thread count: the partition of indices across workers never
// depends on timing, and workers never share mutable state.
//
// Determinism contract (DESIGN.md §5.6): a parallel_for body must be a pure
// function of its index over disjoint state — it may read shared immutable
// data and write only state owned by that index (or by a fixed chunk the
// caller partitioned itself). The pool's own chunk boundaries depend on the
// thread count, so per-chunk reductions that must be thread-count-invariant
// have to use a caller-fixed chunking (see
// msearch::detail::advance_through_levels for the pattern).
//
// Reentrancy rule: parallel_for is NOT recursively parallel. A body that
// itself reaches parallel_for (any overload, any pool) runs the nested loop
// serially on the calling thread. This is detected via a thread-local
// participant flag; without it a nested call would overwrite the pool's
// live job state under its mutex and deadlock or corrupt the run.
//
// Thread count: the global pool is sized by the MESHSEARCH_THREADS
// environment variable (unset or 0 = hardware concurrency, 1 = fully
// serial); tests and benches can rebuild it with
// ThreadPool::set_global_threads.
//
// NOTE: parallel_for accelerates wall-clock time only. Simulated mesh step
// counts are computed analytically and are identical with 1 or N threads.
#pragma once

#include <concepts>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace meshsearch::util {

/// Parse a MESHSEARCH_THREADS-style value: a positive decimal integer in
/// [1, 4096] (strtoul semantics, so leading whitespace and '+' are accepted;
/// a leading zero like "08" reads as 8). Returns 0 for anything else —
/// empty, trailing garbage ("8x"), zero, negative, or out of range.
unsigned parse_thread_count(const char* text);

/// Thread count the global pool is built with when no override is given:
/// MESHSEARCH_THREADS when set to a positive integer, else
/// hardware_concurrency (at least 1). Re-reads the environment on each call.
/// A set-but-malformed MESHSEARCH_THREADS still falls back to hardware
/// concurrency, but emits a one-time stderr warning naming the rejected
/// value instead of being silently ignored.
unsigned default_thread_count();

/// Persistent thread pool executing [begin, end) index ranges.
class ThreadPool {
 public:
  /// threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned thread_count() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Type-erased chunk job: body(lo, hi) runs iterations [lo, hi). The
  /// type-erasure cost is paid once per chunk, not once per index — hot
  /// inner loops should come through this interface (the templated free
  /// parallel_for below does).
  using ChunkBody = std::function<void(std::size_t, std::size_t)>;

  /// Run body over [begin, end) in chunks of at least `grain` indices,
  /// statically assigned across workers. Blocks until all chunks complete.
  ///
  /// Exception propagation is deterministic: when bodies throw, the
  /// exception that propagates is the one from the LOWEST chunk index
  /// (each participant stops at its first throwing chunk and records it;
  /// the rethrow takes the global minimum). Because chunks and the indices
  /// within them run in ascending order, that is the exception thrown at
  /// the smallest failing index — the same one a serial loop would have
  /// thrown — regardless of thread count or scheduling. Chunks after a
  /// participant's first throwing chunk are abandoned; chunks owned by
  /// other participants may still run to completion.
  ///
  /// Nested calls from inside a running body execute body(begin, end)
  /// serially on the calling thread.
  void parallel_for_chunks(std::size_t begin, std::size_t end,
                           const ChunkBody& body, std::size_t grain = 1);

  /// Run body(i) for i in [begin, end), statically chunked across workers.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// True while the calling thread is executing a parallel_for body (of any
  /// pool) — i.e. a parallel_for issued now would run serially.
  static bool in_parallel_region();

  /// Process-wide pool, created on first use with default_thread_count()
  /// threads (the MESHSEARCH_THREADS knob).
  static ThreadPool& global();

  /// Rebuild the global pool with `threads` threads (0 = back to
  /// default_thread_count()). Must not be called while any thread is inside
  /// a parallel region. For tests and bench sweeps.
  static void set_global_threads(unsigned threads);

 private:
  struct Job {
    std::size_t begin = 0, end = 0, chunk = 0, nchunks = 0;
    const ChunkBody* body = nullptr;
  };

  void worker_loop(unsigned id);
  void run_chunks(const Job& job, unsigned id, unsigned nparticipants);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_, cv_done_;
  Job job_;
  std::uint64_t epoch_ = 0;       // incremented per parallel_for call
  unsigned remaining_ = 0;        // workers still running current epoch
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;   // per participant, first throw
  std::vector<std::size_t> error_chunks_;    // chunk index of that throw
};

/// Convenience: run body(i) over [begin, end) on the global pool.
/// Falls back to a serial loop for tiny (or empty/inverted) ranges.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// Templated overload; lambdas resolve here by exact match (std::function
/// lvalues keep the non-template overload above). The body is inlined into
/// a per-chunk trampoline, so the std::function indirection is paid once
/// per chunk instead of once per index.
template <typename Body>
  requires std::invocable<Body&, std::size_t>
void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                  std::size_t grain = 1) {
  if (begin >= end) return;  // inverted ranges are empty, not a huge count
  if (end - begin < 2 * grain || ThreadPool::in_parallel_region()) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  const ThreadPool::ChunkBody chunked = [&body](std::size_t lo,
                                                std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  };
  ThreadPool::global().parallel_for_chunks(begin, end, chunked, grain);
}

/// Caller-fixed chunking for thread-count-invariant reductions (DESIGN.md
/// §5.6): the pool's own chunk boundaries depend on its thread count, so any
/// per-chunk partial result that feeds a deterministic merge must instead be
/// keyed by this FIXED partition of [0, n) into kFixedChunks near-equal
/// ranges. Merging the partials in ascending chunk index then yields the
/// same bits at 1 or N threads.
inline constexpr std::size_t kFixedChunks = 64;

/// Number of non-empty fixed chunks covering [0, n).
inline std::size_t fixed_chunk_count(std::size_t n) {
  return n < kFixedChunks ? n : kFixedChunks;
}

/// Run body(chunk, lo, hi) for each fixed chunk covering [0, n), with the
/// chunks themselves distributed over the pool. `chunk` indexes the fixed
/// partition (stable across thread counts), so per-chunk state the caller
/// allocated as arrays of fixed_chunk_count(n) entries is written
/// race-free and merged deterministically afterwards.
template <typename Body>
  requires std::invocable<Body&, std::size_t, std::size_t, std::size_t>
void for_fixed_chunks(std::size_t n, Body&& body) {
  const std::size_t nchunks = fixed_chunk_count(n);
  parallel_for(0, nchunks, [&](std::size_t c) {
    const std::size_t lo = n * c / nchunks;
    const std::size_t hi = n * (c + 1) / nchunks;
    body(c, lo, hi);
  });
}

}  // namespace meshsearch::util
