// Small statistics toolkit shared by the benchmark harness and the runtime
// observability layer: summary statistics, ordinary-least-squares fits
// (notably the log-log power-law fit used to verify the paper's growth-rate
// claims, e.g. slope ~ 0.5 for O(sqrt n)), and the log-bucketed histogram
// that is the ONE implementation of percentile math in this repo.
//
// Every consumer of percentiles — the StatsRegistry shards (trace/stats.hpp),
// the stream scheduler's SLO report (multisearch/stream.hpp), Summary's
// p50/p90/p95/p99 fields, and the BENCH_*.json emitter (bench/bench_common.hpp)
// — goes through LogHistogram, so bench CSVs and BENCH_*.json can never
// disagree on what "p95" means.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace meshsearch::util {

/// HDR-style log-bucketed histogram over non-negative doubles (typically
/// wall-clock microseconds). Buckets are geometric with kSubBuckets buckets
/// per octave, so any recorded value is off from its bucket's representative
/// by at most ~ 2^(1/(2*kSubBuckets)) - 1 (~4.4% relative error at 8
/// sub-buckets); exact min/max/sum/count ride alongside. Values below kMinValue
/// collapse into bucket 0, values above the top bucket into the last one.
///
/// Plain value type, not thread-safe; the per-thread shards in trace/stats.hpp
/// keep atomic bucket counts and merge into a LogHistogram at snapshot time.
class LogHistogram {
 public:
  static constexpr std::size_t kSubBuckets = 8;   ///< buckets per power of 2
  static constexpr double kMinValue = 1e-3;       ///< 1 ns when unit = us
  static constexpr std::size_t kOctaves = 46;     ///< up to ~2^43 us (~100 d)
  static constexpr std::size_t kBucketCount = 2 + kOctaves * kSubBuckets;

  /// Bucket holding value `v`. Total order: bucket_index is monotone in v.
  static std::size_t bucket_index(double v);
  /// Representative value (geometric bucket midpoint) reported for bucket i.
  static double bucket_value(std::size_t i);
  /// Inclusive upper bound of bucket i (= lower bound of bucket i+1).
  static double bucket_upper(std::size_t i);

  void observe(double v, std::uint64_t times = 1);
  void merge(const LogHistogram& other);
  void add_bucket(std::size_t i, std::uint64_t count);  ///< shard-merge entry

  /// Replace the bucket-derived sum/min/max with exactly-tracked values.
  /// The StatsRegistry shards keep exact moments in atomics alongside the
  /// approximate buckets; snapshot() rebuilds via add_bucket then restores
  /// the exact moments here. No-op on an empty histogram.
  void override_moments(double sum, double min, double max);

  std::uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const;

  /// Quantile q in [0, 1]: the representative value of the first bucket at
  /// which the cumulative count reaches ceil(q * count). q=0 -> min bucket,
  /// q=1 -> max bucket; clamped into [min, max] so p0/p100 are exact.
  /// Returns 0 on an empty histogram.
  double percentile(double q) const;
  double p50() const { return percentile(0.50); }
  double p90() const { return percentile(0.90); }
  double p95() const { return percentile(0.95); }
  double p99() const { return percentile(0.99); }

  const std::array<std::uint64_t, kBucketCount>& buckets() const {
    return buckets_;
  }

  friend bool operator==(const LogHistogram&, const LogHistogram&) = default;

 private:
  std::array<std::uint64_t, kBucketCount> buckets_{};
  std::uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
};

struct Summary {
  double min = 0, max = 0, mean = 0, stddev = 0, median = 0;
  // Bucketed percentiles via LogHistogram — the shared percentile math
  // (median above stays the exact sorted median for backward compatibility).
  double p50 = 0, p90 = 0, p95 = 0, p99 = 0;
  std::size_t count = 0;
};

Summary summarize(std::span<const double> xs);

/// Ordinary least squares y = a + b*x. Returns {a, b, r2}.
struct LinearFit {
  double intercept = 0;
  double slope = 0;
  double r2 = 0;
};

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Power-law fit y = c * x^e via OLS in log-log space. Returns
/// {log(c), e, r2}; `exponent()` is the quantity the experiments check.
struct PowerFit {
  double log_coeff = 0;
  double exponent = 0;
  double r2 = 0;
};

PowerFit fit_power(std::span<const double> xs, std::span<const double> ys);

/// Geometric sequence of problem sizes n = base * ratio^i, i in [0, count).
std::vector<std::size_t> geometric_sizes(std::size_t base, double ratio,
                                         std::size_t count);

}  // namespace meshsearch::util
