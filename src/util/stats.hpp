// Small statistics toolkit for the benchmark harness: summary statistics
// and ordinary-least-squares fits, notably the log-log power-law fit used
// to verify the paper's growth-rate claims (e.g. slope ~ 0.5 for O(sqrt n)).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace meshsearch::util {

struct Summary {
  double min = 0, max = 0, mean = 0, stddev = 0, median = 0;
  std::size_t count = 0;
};

Summary summarize(std::span<const double> xs);

/// Ordinary least squares y = a + b*x. Returns {a, b, r2}.
struct LinearFit {
  double intercept = 0;
  double slope = 0;
  double r2 = 0;
};

LinearFit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Power-law fit y = c * x^e via OLS in log-log space. Returns
/// {log(c), e, r2}; `exponent()` is the quantity the experiments check.
struct PowerFit {
  double log_coeff = 0;
  double exponent = 0;
  double r2 = 0;
};

PowerFit fit_power(std::span<const double> xs, std::span<const double> ys);

/// Geometric sequence of problem sizes n = base * ratio^i, i in [0, count).
std::vector<std::size_t> geometric_sizes(std::size_t base, double ratio,
                                         std::size_t count);

}  // namespace meshsearch::util
