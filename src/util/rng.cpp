#include "util/rng.hpp"

#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace meshsearch::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t x) { return splitmix64(x); }

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  // A state of all zeros is invalid for xoshiro; splitmix64 seeding
  // guarantees non-zero state for any seed.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform(std::uint64_t bound) {
  MS_CHECK(bound > 0);
  // Lemire-style rejection-free-ish multiply-shift with a rejection loop to
  // remove modulo bias entirely.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = (*this)();
    const __uint128_t m = static_cast<__uint128_t>(r) * bound;
    if (static_cast<std::uint64_t>(m) >= threshold)
      return static_cast<std::uint64_t>(m >> 64);
  }
}

std::int64_t Rng::uniform_range(std::int64_t lo, std::int64_t hi) {
  MS_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)());  // full range
  return lo + static_cast<std::int64_t>(uniform(span));
}

double Rng::uniform_real() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) { return uniform_real() < p; }

Rng Rng::split() { return Rng((*this)() ^ 0xd1b54a32d192ed03ull); }

Zipf::Zipf(std::size_t n, double s) {
  MS_CHECK(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::size_t Zipf::operator()(Rng& rng) const {
  const double u = rng.uniform_real();
  // Binary search the first cdf entry >= u.
  std::size_t lo = 0, hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (cdf_[mid] < u)
      lo = mid + 1;
    else
      hi = mid;
  }
  return lo;
}

std::vector<std::uint32_t> random_permutation(std::size_t n, Rng& rng) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.uniform(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace meshsearch::util
