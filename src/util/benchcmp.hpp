// Schema validation and regression comparison for BENCH_<exp>.json files —
// the machine-readable bench reports every bench binary emits (see
// bench/bench_common.hpp for the writer, bench/bench_check.cpp for the CLI).
//
// Two metric classes, compared differently:
//   * charged-class (default): simulated-step costs and other deterministic
//     outputs. Bit-reproducible across hosts and thread counts (the
//     determinism contract), so ANY drift beyond a tiny tolerance — the
//     tolerance only absorbs libm ulp differences across toolchains — is a
//     regression, in either direction (a cheaper charge still means the cost
//     model changed and the baseline must be re-committed deliberately).
//   * wall-class (name matches wall/us/ms/latency): machine-dependent
//     wall-clock measurements. Only slowdowns beyond wall_tolerance count,
//     and they are fatal only when gate_wall is set (CI on the baseline
//     host); elsewhere they are reported as warnings, and
//     MESHSEARCH_SKIP_BENCH_GATE=1 skips the whole gate.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace meshsearch::util {

inline constexpr std::string_view kBenchSchemaV1 = "meshsearch.bench.v1";

struct BenchCompareOptions {
  double charged_tolerance = 1e-6;  ///< relative; absorbs libm ulp drift only
  double wall_tolerance = 0.25;     ///< relative slowdown allowed on wall metrics
  bool gate_wall = false;           ///< wall slowdowns fatal (vs warnings)
};

struct BenchIssue {
  enum class Kind : std::uint8_t {
    kChargedDrift = 0,  ///< deterministic value changed
    kWallRegression,    ///< wall metric slowed past tolerance
    kMissingSeries,     ///< baseline series absent from current report
    kMissingValue,      ///< baseline row/column absent from current report
    kSchema,            ///< document fails v1 schema validation
  };
  Kind kind = Kind::kSchema;
  bool fatal = false;
  std::string where;  ///< "series[row].column" path
  double baseline = 0;
  double current = 0;
  std::string message;
};

struct BenchCompareResult {
  bool ok = true;  ///< no fatal issue
  std::size_t compared_values = 0;
  std::vector<BenchIssue> issues;  ///< fatal issues and warnings, in order
};

/// Wall-class metric name? (machine-dependent, tolerance-compared)
bool is_wall_metric(std::string_view name);

/// Validate a parsed document against the BENCH v1 schema. Empty string when
/// valid, else a human-readable description of the first problem.
std::string validate_bench_schema(const JsonValue& doc);

/// Compare `current` against `baseline` (both schema-valid BENCH documents).
/// Every baseline value must exist in the current report; extra current
/// values are ignored (new coverage is not a regression).
BenchCompareResult compare_bench(const JsonValue& baseline,
                                 const JsonValue& current,
                                 const BenchCompareOptions& opt = {});

}  // namespace meshsearch::util
