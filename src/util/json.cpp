#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace meshsearch::util {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const JsonValue* hit = nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) hit = &v;  // duplicate keys: last one wins, as parsed
  return hit;
}

double JsonValue::get_number(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->as_number() : fallback;
}

std::string JsonValue::get_string(std::string_view key,
                                  std::string fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_string() ? v->as_string()
                                        : std::move(fallback);
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}
JsonValue JsonValue::make_number(double n) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}
JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}
JsonValue JsonValue::make_array(std::vector<JsonValue> a) {
  JsonValue v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(a);
  return v;
}
JsonValue JsonValue::make_object(
    std::vector<std::pair<std::string, JsonValue>> o) {
  JsonValue v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(o);
  return v;
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (raw) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  out += '"';
}

void dump_number(double n, std::string& out) {
  if (!std::isfinite(n)) {
    out += "null";  // JSON has no NaN/inf
    return;
  }
  // Integers render without a fraction so committed baselines stay tidy;
  // %.17g otherwise guarantees double round-trip through strtod.
  if (n == static_cast<double>(static_cast<long long>(n)) &&
      std::abs(n) < 9.0e15) {
    out += std::to_string(static_cast<long long>(n));
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", n);
  out += buf;
}

void dump_value(const JsonValue& v, int indent, int depth, std::string& out) {
  const bool pretty = indent >= 0;
  const auto newline_pad = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (v.kind()) {
    case JsonValue::Kind::kNull: out += "null"; break;
    case JsonValue::Kind::kBool: out += v.as_bool() ? "true" : "false"; break;
    case JsonValue::Kind::kNumber: dump_number(v.as_number(), out); break;
    case JsonValue::Kind::kString: dump_string(v.as_string(), out); break;
    case JsonValue::Kind::kArray: {
      if (v.as_array().empty()) {
        out += "[]";
        break;
      }
      out += '[';
      bool first = true;
      for (const JsonValue& item : v.as_array()) {
        if (!first) out += ',';
        first = false;
        newline_pad(depth + 1);
        dump_value(item, indent, depth + 1, out);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      if (v.as_object().empty()) {
        out += "{}";
        break;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, item] : v.as_object()) {
        if (!first) out += ',';
        first = false;
        newline_pad(depth + 1);
        dump_string(k, out);
        out += pretty ? ": " : ":";
        dump_value(item, indent, depth + 1, out);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult res;
    skip_ws();
    res.value = parse_value(res);
    if (!failed_) {
      skip_ws();
      if (pos_ != text_.size()) fail(res, "trailing characters after document");
    }
    res.ok = !failed_;
    return res;
  }

 private:
  void fail(JsonParseResult& res, const std::string& why) {
    if (failed_) return;
    failed_ = true;
    std::ostringstream os;
    os << why << " at offset " << pos_;
    res.error = os.str();
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value(JsonParseResult& res) {
    if (failed_ || depth_ > kMaxDepth) {
      fail(res, "nesting too deep");
      return {};
    }
    if (pos_ >= text_.size()) {
      fail(res, "unexpected end of input");
      return {};
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object(res);
    if (c == '[') return parse_array(res);
    if (c == '"') return JsonValue::make_string(parse_string(res));
    if (c == 't') {
      if (literal("true")) return JsonValue::make_bool(true);
    } else if (c == 'f') {
      if (literal("false")) return JsonValue::make_bool(false);
    } else if (c == 'n') {
      if (literal("null")) return JsonValue::make_null();
    } else if (c == '-' || (c >= '0' && c <= '9')) {
      return parse_number(res);
    }
    fail(res, "unexpected character");
    return {};
  }

  JsonValue parse_object(JsonParseResult& res) {
    ++depth_;
    consume('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    skip_ws();
    if (consume('}')) {
      --depth_;
      return JsonValue::make_object(std::move(members));
    }
    while (!failed_) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        fail(res, "expected object key string");
        break;
      }
      std::string key = parse_string(res);
      skip_ws();
      if (!consume(':')) {
        fail(res, "expected ':' after object key");
        break;
      }
      skip_ws();
      members.emplace_back(std::move(key), parse_value(res));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) break;
      fail(res, "expected ',' or '}' in object");
    }
    --depth_;
    return JsonValue::make_object(std::move(members));
  }

  JsonValue parse_array(JsonParseResult& res) {
    ++depth_;
    consume('[');
    std::vector<JsonValue> items;
    skip_ws();
    if (consume(']')) {
      --depth_;
      return JsonValue::make_array(std::move(items));
    }
    while (!failed_) {
      skip_ws();
      items.push_back(parse_value(res));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) break;
      fail(res, "expected ',' or ']' in array");
    }
    --depth_;
    return JsonValue::make_array(std::move(items));
  }

  std::string parse_string(JsonParseResult& res) {
    consume('"');
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail(res, "truncated \\u escape");
              return out;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else {
                fail(res, "bad hex digit in \\u escape");
                return out;
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs are not
            // combined — this reader only sees ASCII from our own writers).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail(res, "bad escape character");
            return out;
        }
      } else {
        out += c;
      }
    }
    fail(res, "unterminated string");
    return out;
  }

  JsonValue parse_number(JsonParseResult& res) {
    const std::size_t start = pos_;
    if (consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0' || !std::isfinite(v)) {
      fail(res, "malformed number");
      return {};
    }
    return JsonValue::make_number(v);
  }

  static constexpr int kMaxDepth = 256;
  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  bool failed_ = false;
};

}  // namespace

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_value(*this, indent, 0, out);
  return out;
}

JsonParseResult parse_json(std::string_view text) {
  return Parser(text).run();
}

JsonParseResult parse_json_file(const std::string& path) {
  std::ifstream f(path);
  if (!f.good()) {
    JsonParseResult res;
    res.error = "cannot open " + path;
    return res;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  JsonParseResult res = parse_json(buf.str());
  if (!res.ok) res.error = path + ": " + res.error;
  return res;
}

}  // namespace meshsearch::util
