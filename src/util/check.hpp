// Lightweight invariant checking used across meshsearch.
//
// MS_CHECK is active in all build types: the simulator is a measuring
// instrument, and a silently-corrupt measurement is worse than a crash.
// MS_DCHECK compiles away in NDEBUG builds and is used in per-element
// hot loops of the simulator engines.
//
// A tripped check throws CheckFailedError (util/error.hpp), which derives
// from meshsearch::Error and std::logic_error; the file:line throw site is
// carried both in the message and in ErrorContext::site.
#pragma once

#include <sstream>
#include <string>

#include "util/error.hpp"

namespace meshsearch {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream site;
  site << file << ':' << line;
  std::ostringstream os;
  os << site.str() << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  ErrorContext ctx;
  ctx.site = site.str();
  throw CheckFailedError(os.str(), std::move(ctx));
}

}  // namespace meshsearch

#define MS_CHECK(expr)                                                \
  do {                                                                \
    if (!(expr))                                                      \
      ::meshsearch::check_failed(#expr, __FILE__, __LINE__, "");      \
  } while (0)

#define MS_CHECK_MSG(expr, msg)                                       \
  do {                                                                \
    if (!(expr))                                                      \
      ::meshsearch::check_failed(#expr, __FILE__, __LINE__, (msg));   \
  } while (0)

#ifdef NDEBUG
#define MS_DCHECK(expr) ((void)0)
#else
#define MS_DCHECK(expr) MS_CHECK(expr)
#endif
