#include "util/benchcmp.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>

namespace meshsearch::util {

namespace {

std::string lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool contains(std::string_view haystack, std::string_view needle) {
  return haystack.find(needle) != std::string_view::npos;
}

/// Render a scalar JSON cell for use as a row key / diff message.
std::string cell_key(const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kString: return v.as_string();
    case JsonValue::Kind::kBool: return v.as_bool() ? "true" : "false";
    case JsonValue::Kind::kNumber: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v.as_number());
      return buf;
    }
    default: return "<non-scalar>";
  }
}

double rel_diff(double base, double cur) {
  const double denom = std::max(std::abs(base), std::abs(cur));
  if (denom == 0) return 0;
  return std::abs(cur - base) / denom;
}

void add_issue(BenchCompareResult& res, BenchIssue::Kind kind, bool fatal,
               std::string where, double base, double cur,
               std::string message) {
  BenchIssue issue;
  issue.kind = kind;
  issue.fatal = fatal;
  issue.where = std::move(where);
  issue.baseline = base;
  issue.current = cur;
  issue.message = std::move(message);
  if (fatal) res.ok = false;
  res.issues.push_back(std::move(issue));
}

const JsonValue* find_series(const JsonValue& doc, std::string_view name) {
  const JsonValue* series = doc.find("series");
  if (series == nullptr || !series->is_array()) return nullptr;
  for (const JsonValue& s : series->as_array())
    if (s.is_object() && s.get_string("name") == name) return &s;
  return nullptr;
}

const JsonValue* find_wall(const JsonValue& doc, std::string_view name) {
  const JsonValue* wall = doc.find("wall");
  if (wall == nullptr || !wall->is_array()) return nullptr;
  for (const JsonValue& w : wall->as_array())
    if (w.is_object() && w.get_string("name") == name) return &w;
  return nullptr;
}

/// Match a baseline row to a current row by first-column key; rows whose key
/// repeats match in order of appearance, so re-running the same config lines
/// up even when a sweep visits the same parameter twice.
const JsonValue* match_row(const JsonValue& rows, const std::string& key,
                           std::size_t occurrence) {
  std::size_t seen = 0;
  for (const JsonValue& row : rows.as_array()) {
    if (!row.is_array() || row.as_array().empty()) continue;
    if (cell_key(row.as_array().front()) != key) continue;
    if (seen == occurrence) return &row;
    ++seen;
  }
  return nullptr;
}

void compare_value(BenchCompareResult& res, const BenchCompareOptions& opt,
                   const std::string& where, bool wall_class,
                   const JsonValue& base, const JsonValue& cur) {
  ++res.compared_values;
  if (base.is_number() && cur.is_number()) {
    const double b = base.as_number();
    const double c = cur.as_number();
    if (wall_class) {
      // Wall clock: only a slowdown past tolerance counts; faster is fine.
      if (c > b && b > 0 && (c - b) / b > opt.wall_tolerance)
        add_issue(res, BenchIssue::Kind::kWallRegression, opt.gate_wall, where,
                  b, c, "wall-clock regression");
      return;
    }
    if (rel_diff(b, c) > opt.charged_tolerance)
      add_issue(res, BenchIssue::Kind::kChargedDrift, true, where, b, c,
                "charged value drifted");
    return;
  }
  // Non-numeric cells (flags like "oracle ok") must match exactly; any
  // difference means a deterministic output changed.
  if (cell_key(base) != cell_key(cur))
    add_issue(res, BenchIssue::Kind::kChargedDrift, !wall_class, where, 0, 0,
              "cell changed: '" + cell_key(base) + "' -> '" + cell_key(cur) +
                  "'");
}

}  // namespace

bool is_wall_metric(std::string_view name) {
  const std::string n = lower(name);
  return contains(n, "wall") || contains(n, "_us") || contains(n, "_ms") ||
         contains(n, "latency") || contains(n, "seconds");
}

std::string validate_bench_schema(const JsonValue& doc) {
  if (!doc.is_object()) return "document is not a JSON object";
  if (doc.get_string("schema") != kBenchSchemaV1)
    return "schema field is not '" + std::string(kBenchSchemaV1) + "'";
  if (doc.get_string("exp").empty()) return "missing 'exp' string";
  const JsonValue* series = doc.find("series");
  if (series == nullptr || !series->is_array())
    return "missing 'series' array";
  for (std::size_t i = 0; i < series->as_array().size(); ++i) {
    const JsonValue& s = series->as_array()[i];
    const std::string at = "series[" + std::to_string(i) + "]";
    if (!s.is_object()) return at + " is not an object";
    if (s.get_string("name").empty()) return at + " missing 'name'";
    const JsonValue* cols = s.find("columns");
    if (cols == nullptr || !cols->is_array())
      return at + " missing 'columns' array";
    for (const JsonValue& c : cols->as_array())
      if (!c.is_string()) return at + " has a non-string column name";
    const JsonValue* rows = s.find("rows");
    if (rows == nullptr || !rows->is_array()) return at + " missing 'rows'";
    for (const JsonValue& row : rows->as_array()) {
      if (!row.is_array()) return at + " has a non-array row";
      if (row.as_array().size() != cols->as_array().size())
        return at + " has a row whose width differs from 'columns'";
    }
  }
  const JsonValue* wall = doc.find("wall");
  if (wall != nullptr) {
    if (!wall->is_array()) return "'wall' is not an array";
    for (const JsonValue& w : wall->as_array()) {
      if (!w.is_object() || w.get_string("name").empty())
        return "'wall' entry missing 'name'";
    }
  }
  return {};
}

BenchCompareResult compare_bench(const JsonValue& baseline,
                                 const JsonValue& current,
                                 const BenchCompareOptions& opt) {
  BenchCompareResult res;
  for (const auto* doc : {&baseline, &current}) {
    const std::string err = validate_bench_schema(*doc);
    if (!err.empty()) {
      add_issue(res, BenchIssue::Kind::kSchema, true,
                doc == &baseline ? "baseline" : "current", 0, 0, err);
    }
  }
  if (!res.ok) return res;

  if (baseline.get_string("exp") != current.get_string("exp"))
    add_issue(res, BenchIssue::Kind::kSchema, true, "exp", 0, 0,
              "experiment id mismatch: '" + baseline.get_string("exp") +
                  "' vs '" + current.get_string("exp") + "'");

  // Every baseline series/row/cell must still exist and agree.
  for (const JsonValue& bs : baseline.find("series")->as_array()) {
    const std::string sname = bs.get_string("name");
    const JsonValue* cs = find_series(current, sname);
    if (cs == nullptr) {
      add_issue(res, BenchIssue::Kind::kMissingSeries, true, sname, 0, 0,
                "series missing from current report");
      continue;
    }
    const auto& bcols = bs.find("columns")->as_array();
    const auto& ccols = cs->find("columns")->as_array();
    // Map baseline column index -> current column index by header name.
    std::vector<std::ptrdiff_t> col_map(bcols.size(), -1);
    for (std::size_t j = 0; j < bcols.size(); ++j) {
      for (std::size_t k = 0; k < ccols.size(); ++k) {
        if (ccols[k].as_string() == bcols[j].as_string()) {
          col_map[j] = static_cast<std::ptrdiff_t>(k);
          break;
        }
      }
      if (col_map[j] < 0)
        add_issue(res, BenchIssue::Kind::kMissingValue, true,
                  sname + "." + bcols[j].as_string(),
                  0, 0, "column missing from current report");
    }
    const JsonValue* brows = bs.find("rows");
    const JsonValue* crows = cs->find("rows");
    std::map<std::string, std::size_t> key_occurrence;
    for (const JsonValue& brow : brows->as_array()) {
      if (!brow.is_array() || brow.as_array().empty()) continue;
      const std::string key = cell_key(brow.as_array().front());
      const std::size_t occ = key_occurrence[key]++;
      const JsonValue* crow = match_row(*crows, key, occ);
      const std::string rowat = sname + "[" + key + "]";
      if (crow == nullptr) {
        add_issue(res, BenchIssue::Kind::kMissingValue, true, rowat, 0, 0,
                  "row missing from current report");
        continue;
      }
      for (std::size_t j = 1; j < brow.as_array().size(); ++j) {
        if (col_map[j] < 0) continue;  // already reported above
        const std::string& col = bcols[j].as_string();
        compare_value(res, opt, rowat + "." + col, is_wall_metric(col),
                      brow.as_array()[j],
                      crow->as_array()[static_cast<std::size_t>(col_map[j])]);
      }
    }
  }

  // Wall-clock histogram section: always wall-class, percentiles only
  // (counts depend on config knobs that legitimately evolve).
  const JsonValue* bwall = baseline.find("wall");
  if (bwall != nullptr && bwall->is_array()) {
    for (const JsonValue& bw : bwall->as_array()) {
      const std::string wname = bw.get_string("name");
      const JsonValue* cw = find_wall(current, wname);
      if (cw == nullptr) {
        add_issue(res, BenchIssue::Kind::kMissingValue, opt.gate_wall,
                  "wall." + wname, 0, 0,
                  "wall histogram missing from current report");
        continue;
      }
      for (const char* field : {"p50_us", "p95_us", "p99_us", "max_us"}) {
        const JsonValue* bf = bw.find(field);
        const JsonValue* cf = cw->find(field);
        if (bf == nullptr || cf == nullptr || !bf->is_number() ||
            !cf->is_number())
          continue;
        compare_value(res, opt, "wall." + wname + "." + field,
                      /*wall_class=*/true, *bf, *cf);
      }
    }
  }
  return res;
}

}  // namespace meshsearch::util
