// Dobkin–Kirkpatrick hierarchy for convex polygons (the 2-d instance of
// §5's hierarchical representations): alternate-vertex removal halves the
// polygon per level (mu = 2 exactly), candidate rings have length <= 3.
//
// Applications (Theorem 8 items 1-2 in their 2-d form, documented
// substitution in DESIGN.md):
//   * multiple tangent-line determination — directional extreme queries;
//   * multiple line-polygon intersection tests — a line meets the polygon
//     iff the extreme vertices along +normal and -normal straddle it, i.e.
//     two extreme queries and two sign tests.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/dk_hierarchy.hpp"
#include "geometry/predicates.hpp"

namespace meshsearch::geom {

class DKPolygon {
 public:
  /// poly: strictly convex, counter-clockwise, >= 3 vertices,
  /// |coords| <= kMaxCoord.
  explicit DKPolygon(std::vector<Point2> poly);

  const ExtremeDag& extreme_dag() const { return dag_; }
  ExtremeQuery extreme_program() const { return ExtremeQuery{dag_.root}; }
  std::size_t hierarchy_levels() const { return num_levels_; }
  const std::vector<Point2>& polygon() const { return poly_; }

  /// Queries for a batch of line-intersection tests: line i is
  /// a_i * x + b_i * y = c_i; emits two extreme queries per line
  /// (directions (a,b) and (-a,-b)). After running them, combine() returns
  /// per-line booleans: does the line meet the polygon?
  struct Line {
    Scalar a = 0, b = 0, c = 0;
  };
  std::vector<msearch::Query> make_line_queries(
      const std::vector<Line>& lines) const;
  static std::vector<bool> combine_line_answers(
      const std::vector<Line>& lines,
      const std::vector<msearch::Query>& queries);

  /// Tangent lines through an external point (Theorem 8 item 1's "two
  /// planes through l tangent to P" in the polygon setting): the
  /// counter-clockwise-most (side = +1) or clockwise-most (side = -1)
  /// polygon vertex as seen from p. The angular position of the boundary
  /// seen from an external point is unimodal, so the DK candidate property
  /// holds exactly as for linear extremes (see dk_hierarchy.hpp).
  ///
  /// q.key[0..1] = p (must be strictly outside the polygon),
  /// q.key[2] = side (+1 / -1). Result: q.result = tangent vertex id,
  /// (q.acc0, q.acc1) = its coordinates.
  struct PointTangent {
    msearch::Vid root;
    msearch::Vid start(msearch::Query&) const { return root; }
    msearch::Vid next(const msearch::VertexRecord& v,
                      msearch::Query& q) const;
  };
  PointTangent tangent_program() const { return PointTangent{dag_.root}; }

  /// True iff vertex id `t` witnesses the side-tangent from p: no polygon
  /// vertex lies strictly beyond the line (p, t) on that side.
  bool is_tangent_vertex(const Point2& p, std::int32_t t, int side) const;

  bool point_outside(const Point2& p) const;

  /// Reference answers.
  std::int64_t extreme_dot_brute(const Point2& d) const;
  bool line_intersects_brute(const Line& l) const;

 private:
  std::vector<Point2> poly_;
  std::size_t num_levels_ = 0;
  ExtremeDag dag_;
};

}  // namespace meshsearch::geom
