#include "geometry/hull2d.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace meshsearch::geom {

std::vector<Point2> convex_hull(std::vector<Point2> pts) {
  std::sort(pts.begin(), pts.end(), [](const Point2& a, const Point2& b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  const std::size_t n = pts.size();
  if (n <= 2) return pts;
  std::vector<Point2> hull(2 * n);
  std::size_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {  // lower chain
    while (k >= 2 && orient2d(hull[k - 2], hull[k - 1], pts[i]) <= 0) --k;
    hull[k++] = pts[i];
  }
  const std::size_t lower = k + 1;
  for (std::size_t i = n - 1; i-- > 0;) {  // upper chain
    while (k >= lower && orient2d(hull[k - 2], hull[k - 1], pts[i]) <= 0) --k;
    hull[k++] = pts[i];
  }
  hull.resize(k - 1);
  return hull;
}

bool is_strictly_convex_ccw(const std::vector<Point2>& poly) {
  const std::size_t n = poly.size();
  if (n < 3) return false;
  for (std::size_t i = 0; i < n; ++i)
    if (orient2d(poly[i], poly[(i + 1) % n], poly[(i + 2) % n]) <= 0)
      return false;
  return true;
}

std::vector<Point2> random_convex_polygon(std::size_t target, Scalar radius,
                                          util::Rng& rng) {
  MS_CHECK(target >= 3 && radius >= 8 && radius <= kMaxCoord);
  // Sample angles, round onto the integer grid near the circle, and hull.
  std::vector<Point2> pts;
  pts.reserve(2 * target);
  const double tau = 6.283185307179586;
  for (std::size_t i = 0; i < 2 * target; ++i) {
    const double ang = rng.uniform_real() * tau;
    pts.push_back(Point2{
        static_cast<Scalar>(std::llround(std::cos(ang) * double(radius))),
        static_cast<Scalar>(std::llround(std::sin(ang) * double(radius)))});
  }
  auto hull = convex_hull(std::move(pts));
  MS_CHECK_MSG(hull.size() >= 3, "degenerate random polygon");
  return hull;
}

std::vector<Point2> random_points_in_disk(std::size_t count, Scalar radius,
                                          util::Rng& rng) {
  MS_CHECK(radius >= 2 && radius <= kMaxCoord);
  std::vector<Point2> pts;
  pts.reserve(count);
  while (pts.size() < count) {
    const Scalar x = rng.uniform_range(-radius, radius);
    const Scalar y = rng.uniform_range(-radius, radius);
    if (x * x + y * y <= radius * radius) pts.push_back(Point2{x, y});
  }
  return pts;
}

}  // namespace meshsearch::geom
