#include "geometry/dk_hierarchy.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "multisearch/validate.hpp"
#include "util/check.hpp"

namespace meshsearch::geom {

ExtremeDag build_extreme_dag(const HierarchyLevels& h) {
  const std::size_t L = h.layer.size();
  MS_CHECK(L >= 1);
  MS_CHECK(h.cand.size() == L);  // cand[0] unused
  MS_CHECK(!h.layer[0].empty());

  // Pass 1: vid assignment. Root = 0; level 1 = ring over layer[0]; level
  // l+1 = rings of every u in layer[l-1] using cand[l]. head[l][i] = vid of
  // the ring head for the i-th vertex of layer[l-1]'s candidates at layer l;
  // head0 = head of the root ring.
  std::size_t total = 1;
  const std::int32_t head0 = 1;
  total += h.layer[0].size();
  std::vector<std::vector<std::int32_t>> head(L);
  for (std::size_t l = 1; l < L; ++l) {
    head[l].assign(h.layer[l - 1].size(), -1);
    for (std::size_t i = 0; i < h.layer[l - 1].size(); ++i) {
      MS_CHECK(!h.cand[l][i].empty());
      MS_CHECK_MSG(h.cand[l][i][0] == h.layer[l - 1][i],
                   "first candidate must be the vertex itself");
      head[l][i] = static_cast<std::int32_t>(total);
      total += h.cand[l][i].size();
    }
  }

  ExtremeDag out;
  out.dag = msearch::DistributedGraph(total);
  // Index of each vertex within its layer, for descend targets.
  std::vector<std::unordered_map<std::int32_t, std::int32_t>> pos(L);
  for (std::size_t l = 0; l < L; ++l)
    for (std::size_t i = 0; i < h.layer[l].size(); ++i)
      pos[l][h.layer[l][i]] = static_cast<std::int32_t>(i);

  std::int32_t max_ring = 1;
  auto fill_slot = [&](std::int32_t vid, std::int32_t level,
                       std::int32_t cand_id, std::int32_t ring_len,
                       std::int32_t ring_next, std::int32_t descend) {
    auto& rec = out.dag.vert(vid);
    rec.level = level;
    const auto& p = h.pts[static_cast<std::size_t>(cand_id)];
    rec.key[0] = p.x;
    rec.key[1] = p.y;
    rec.key[2] = p.z;
    rec.key[3] = ring_len;
    rec.key[4] = cand_id;
    rec.key[6] = descend >= 0 ? 1 : 0;
    if (ring_next >= 0) out.dag.add_edge(vid, ring_next);
    if (descend >= 0) out.dag.add_edge(vid, descend);
  };

  // Descend target of a slot whose candidate z lives in layer l: the ring
  // head of z at layer l+1 (none at the finest layer).
  auto descend_of = [&](std::size_t l, std::int32_t z) -> std::int32_t {
    if (l + 1 >= L) return -1;
    return head[l + 1][static_cast<std::size_t>(pos[l].at(z))];
  };

  // Root slot: candidate = first coarsest vertex, ring of length 1,
  // descending into the root ring.
  fill_slot(0, 0, h.layer[0][0], 1, -1, head0);

  // Root ring over layer[0].
  {
    const auto k = static_cast<std::int32_t>(h.layer[0].size());
    max_ring = std::max(max_ring, k);
    for (std::int32_t i = 0; i < k; ++i) {
      const auto z = h.layer[0][static_cast<std::size_t>(i)];
      fill_slot(head0 + i, 1, z, k, k > 1 ? head0 + (i + 1) % k : -1,
                descend_of(0, z));
    }
  }

  for (std::size_t l = 1; l < L; ++l) {
    for (std::size_t i = 0; i < h.layer[l - 1].size(); ++i) {
      const auto& ring = h.cand[l][i];
      const auto k = static_cast<std::int32_t>(ring.size());
      max_ring = std::max(max_ring, k);
      for (std::int32_t r = 0; r < k; ++r) {
        const auto z = ring[static_cast<std::size_t>(r)];
        fill_slot(head[l][i] + r, static_cast<std::int32_t>(l) + 1, z, k,
                  k > 1 ? head[l][i] + (r + 1) % k : -1, descend_of(l, z));
      }
    }
  }
  out.dag.validate();
  out.level_work = 2 * max_ring;
  out.root = 0;

  std::vector<std::size_t> level_size(L + 1, 0);
  for (const auto& v : out.dag.verts())
    ++level_size[static_cast<std::size_t>(v.level)];
  out.mu = std::pow(static_cast<double>(level_size[L]) /
                        static_cast<double>(level_size[0]),
                    1.0 / static_cast<double>(L));
  out.mu = std::max(out.mu, 1.05);
  return out;
}

msearch::Vid ExtremeQuery::next(const msearch::VertexRecord& v,
                                msearch::Query& q) const {
  const Point3 d{q.key[0], q.key[1], q.key[2]};
  const Point3 p{v.key[0], v.key[1], v.key[2]};
  const std::int64_t dot = dot3(d, p);
  const auto ring_len = static_cast<std::int32_t>(v.key[3]);
  const bool ring_edge = v.key[3] > 1;  // rings of length 1 have no nbr[0]
  const msearch::Vid ring_next = ring_edge ? v.nbr[0] : msearch::kNoVertex;
  const msearch::Vid descend =
      v.key[6] ? v.nbr[ring_edge ? 1 : 0] : msearch::kNoVertex;

  if (q.state == 0 || dot > q.acc0) {  // first slot of a ring, or new best
    q.acc0 = dot;
    q.result = static_cast<std::int32_t>(v.key[4]);
  }
  ++q.state;
  if (q.state < ring_len) return ring_next;  // keep scanning the ring
  // Full lap done: move to (or stay at) the best slot, then descend.
  if (static_cast<std::int32_t>(v.key[4]) == q.result) {
    q.state = 0;
    return descend;  // kNoVertex at the finest layer: done
  }
  MS_CHECK_MSG(q.state < 2 * ring_len + 2, "extreme ring walk diverged");
  return ring_next;
}

DKHierarchy3::DKHierarchy3(std::vector<Point3> pts, util::Rng& rng,
                           unsigned max_degree)
    : pts_(std::move(pts)) {
  if (max_degree < 6)
    msearch::invalid_input("DK hierarchy needs max_degree >= 6",
                           "dk-hierarchy");
  // Fine-to-coarse hull sequence.
  std::vector<std::vector<std::int32_t>> fine_layers;       // P_0, P_1, ...
  std::vector<std::vector<std::vector<std::int32_t>>> fine_cands;
  std::vector<Point3> cur_pts = pts_;
  std::vector<std::int32_t> cur_ids(pts_.size());
  for (std::size_t i = 0; i < pts_.size(); ++i)
    cur_ids[i] = static_cast<std::int32_t>(i);

  Hull3 hull = convex_hull3(cur_pts, rng);
  // Map hull vertex indices (into cur_pts) to original ids.
  auto to_orig = [&](const std::vector<std::int32_t>& ids,
                     const std::vector<std::int32_t>& idx) {
    std::vector<std::int32_t> out;
    out.reserve(idx.size());
    for (const auto i : idx) out.push_back(ids[static_cast<std::size_t>(i)]);
    return out;
  };
  hull_verts_ = to_orig(cur_ids, hull.vertices);

  for (;;) {
    const auto adj = hull_adjacency(hull, cur_pts.size());
    std::vector<std::int32_t> layer = to_orig(cur_ids, hull.vertices);
    fine_layers.push_back(layer);
    if (hull.vertices.size() <= 8) break;

    // Independent set of low-degree hull vertices (greedy).
    std::vector<std::uint8_t> blocked(cur_pts.size(), 0), removed(cur_pts.size(), 0);
    std::size_t removed_count = 0;
    unsigned cap = max_degree;
    while (removed_count == 0) {
      for (const auto v : hull.vertices) {
        const auto sv = static_cast<std::size_t>(v);
        if (blocked[sv] || adj[sv].size() > cap) continue;
        removed[sv] = 1;
        ++removed_count;
        blocked[sv] = 1;
        for (const auto w : adj[sv]) blocked[static_cast<std::size_t>(w)] = 1;
        if (hull.vertices.size() - removed_count <= 4) break;
      }
      cap += 4;
      MS_CHECK_MSG(cap <= 128, "no removable hull vertex found");
    }

    // Candidates for each survivor u: {u} + removed neighbours in this hull.
    std::vector<std::vector<std::int32_t>> cands;
    std::vector<std::int32_t> survivors_local;
    for (const auto v : hull.vertices)
      if (!removed[static_cast<std::size_t>(v)]) survivors_local.push_back(v);
    for (const auto u : survivors_local) {
      std::vector<std::int32_t> c{cur_ids[static_cast<std::size_t>(u)]};
      for (const auto w : adj[static_cast<std::size_t>(u)])
        if (removed[static_cast<std::size_t>(w)])
          c.push_back(cur_ids[static_cast<std::size_t>(w)]);
      cands.push_back(std::move(c));
    }
    fine_cands.push_back(std::move(cands));

    // Recurse on the survivors.
    std::vector<Point3> next_pts;
    std::vector<std::int32_t> next_ids;
    for (const auto u : survivors_local) {
      next_pts.push_back(cur_pts[static_cast<std::size_t>(u)]);
      next_ids.push_back(cur_ids[static_cast<std::size_t>(u)]);
    }
    cur_pts = std::move(next_pts);
    cur_ids = std::move(next_ids);
    hull = convex_hull3(cur_pts, rng);
    // Survivors must all stay hull vertices (removal only shrinks the hull).
    MS_CHECK_MSG(hull.vertices.size() == cur_pts.size(),
                 "a surviving vertex fell inside the coarser hull");
  }

  // Assemble coarse-to-fine HierarchyLevels. fine_layers = [P_0 .. P_K]
  // (P_K coarsest); fine_cands[k] maps P_{k+1}-survivors to P_k candidates.
  HierarchyLevels h;
  h.pts = pts_;
  const std::size_t K = fine_layers.size() - 1;
  num_levels_ = fine_layers.size();
  h.layer.resize(K + 1);
  h.cand.resize(K + 1);
  for (std::size_t k = 0; k <= K; ++k) h.layer[k] = fine_layers[K - k];
  for (std::size_t l = 1; l <= K; ++l) {
    // layer[l-1] = P_{K-l+1} survivors; candidates into layer[l] = P_{K-l}.
    h.cand[l] = fine_cands[K - l];
    // fine_cands was built in survivor order; layer[l-1] order must match.
    MS_CHECK(h.cand[l].size() == h.layer[l - 1].size());
    for (std::size_t i = 0; i < h.cand[l].size(); ++i)
      MS_CHECK(h.cand[l][i][0] == h.layer[l - 1][i]);
  }
  dag_ = build_extreme_dag(h);
}

}  // namespace meshsearch::geom
