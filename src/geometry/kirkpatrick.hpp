// Kirkpatrick's subdivision hierarchy (§5, [Kir83], [DK87]) as a
// hierarchical-DAG search structure for multiple planar point location.
//
// Construction: start from a triangulation of the point set inside a
// bounding triangle (geometry/triangulate.hpp); repeatedly remove an
// independent set of interior vertices of degree <= max_degree and
// retriangulate each star-shaped hole by ear clipping, linking every new
// (coarser) triangle to the old (finer) triangles it overlaps (exact
// separating-axis tests). The last level is the bounding triangle alone.
//
// DAG encoding ("slot" nodes): a query at a coarse triangle must test which
// of its <= max_degree finer children contains the point, but a vertex
// record can only hold ONE triangle's coordinates. So every (parent, child)
// pair becomes a slot vertex holding the child's corner coordinates; a
// parent's slots form a chain (within-level edges), and a slot whose
// triangle contains the query point descends to the head of that child's
// own chain. A query therefore takes <= chain-length steps per level —
// exactly the generalized hierarchical-DAG model (level_work) that
// Algorithm 1 supports with a constant-factor cost.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "geometry/triangulate.hpp"
#include "multisearch/hierarchical.hpp"
#include "multisearch/update.hpp"

namespace meshsearch::geom {

class Kirkpatrick {
 public:
  /// Build over `points` (distinct, |coords| < radius, 4*radius <=
  /// kMaxCoord). max_degree is the removal degree cap (Kirkpatrick uses a
  /// constant; 8 keeps chains short).
  Kirkpatrick(std::vector<Point2> points, Scalar radius,
              unsigned max_degree = 8);

  const msearch::DistributedGraph& dag() const { return dag_; }
  msearch::Vid root_slot() const { return 0; }

  std::size_t hierarchy_levels() const { return levels_.size(); }
  std::int32_t level_work() const { return level_work_; }
  double mu() const { return mu_; }

  /// View of the slot DAG as the paper's §3 input class.
  msearch::HierarchicalDag hierarchical_dag() const {
    return msearch::HierarchicalDag(dag_, mu_, level_work_);
  }

  /// Triangles of the finest triangulation (answer space).
  std::size_t finest_triangle_count() const { return levels_.front().tri.size(); }
  std::array<Point2, 3> finest_corners(std::int32_t id) const;

  /// q.result value for probes outside the bounding triangle.
  static constexpr std::int32_t kOutside = -2;

  /// Corner points of the bounding triangle (hierarchy root).
  std::array<Point2, 3> bounding_corners() const {
    return {verts_[0], verts_[1], verts_[2]};
  }

  /// Point-location program: q.key[0], q.key[1] = point coordinates.
  /// Result: q.result = id of a finest triangle containing the point, or
  /// kOutside for points outside the bounding triangle.
  struct PointLocate {
    msearch::Vid root;
    msearch::Vid start(msearch::Query&) const { return root; }
    msearch::Vid next(const msearch::VertexRecord& v,
                      msearch::Query& q) const;
  };
  PointLocate locate_program() const { return PointLocate{root_slot()}; }

  /// Does the finest triangle q.result contain the point in q.key?
  bool answer_contains_point(const msearch::Query& q) const;

  /// The live point set (bounding-triangle corners excluded).
  const std::vector<Point2>& points() const { return points_; }

  /// Batched dynamic update: remove the points in `deletes` (matched by
  /// value), then add `inserts`. Validation (front door, before any
  /// mutation): deletes must name present points, inserts must be in
  /// bounds and distinct from each other and from the survivors, and the
  /// batch must not empty the point set — violations throw
  /// InvalidInputError and leave the structure untouched.
  ///
  /// The subdivision hierarchy is re-triangulated from the new point set —
  /// "re-triangulated pockets" at the coarsest granularity: the whole
  /// hierarchy is one pocket — and the new slot DAG is diffed against the
  /// old one. If the topology (vertex count, levels, adjacency) came out
  /// identical, the delta lists only the slots whose triangle coordinates
  /// changed (payload-only, e.g. a delete+re-insert of the same point
  /// yields an empty dirty set); any structural difference reports
  /// topology_changed, which is the common case and exercises warm
  /// engines' full re-setup fallback. The generation is bumped either way.
  msearch::StructureDelta apply_updates(const std::vector<Point2>& inserts,
                                        const std::vector<Point2>& deletes);

 private:
  struct Level {
    std::vector<std::array<std::int32_t, 3>> tri;  ///< ccw vertex ids
    /// children[j] = indices of finer-level triangles overlapping tri j
    /// (empty for the finest level).
    std::vector<std::vector<std::int32_t>> children;
  };

  Level coarsen(const Level& fine, std::vector<std::uint8_t>& removed_flag,
                unsigned max_degree);
  void build_dag();
  /// Re-triangulate points_ and rebuild levels_ + dag_ from scratch
  /// (preserving the DAG's generation stamp across the assignment).
  void rebuild_hierarchy();

  std::vector<Point2> points_;       ///< live input point set
  Scalar radius_ = 0;
  unsigned max_degree_ = 8;
  std::vector<Point2> verts_;        ///< shared vertex coordinates
  std::vector<Level> levels_;        ///< [0] = finest ... back() = 1 triangle
  msearch::DistributedGraph dag_;
  std::int32_t level_work_ = 1;
  double mu_ = 2.0;
};

}  // namespace meshsearch::geom
