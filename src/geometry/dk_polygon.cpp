#include "geometry/dk_polygon.hpp"

#include <algorithm>

#include "geometry/hull2d.hpp"
#include "multisearch/validate.hpp"
#include "util/check.hpp"

namespace meshsearch::geom {

DKPolygon::DKPolygon(std::vector<Point2> poly) : poly_(std::move(poly)) {
  msearch::validate_points_in_bounds(poly_, "dk-polygon");
  if (!is_strictly_convex_ccw(poly_))
    msearch::invalid_input("polygon must be strictly convex ccw",
                           "dk-polygon");

  HierarchyLevels h;
  h.pts.reserve(poly_.size());
  for (const auto& p : poly_) h.pts.push_back(Point3{p.x, p.y, 0});

  // Fine-to-coarse: remove every second vertex until <= 8 remain.
  std::vector<std::vector<std::int32_t>> fine_layers;
  std::vector<std::vector<std::vector<std::int32_t>>> fine_cands;
  std::vector<std::int32_t> cur(poly_.size());
  for (std::size_t i = 0; i < poly_.size(); ++i)
    cur[i] = static_cast<std::int32_t>(i);
  fine_layers.push_back(cur);
  while (cur.size() > 8) {
    const std::size_t m = cur.size();
    // Remove odd positions; with odd m the last even position keeps both of
    // its neighbours so independence holds trivially (degree-2 cycle).
    std::vector<std::int32_t> survivors;
    std::vector<std::vector<std::int32_t>> cands;
    for (std::size_t i = 0; i < m; i += 2) {
      survivors.push_back(cur[i]);
      std::vector<std::int32_t> c{cur[i]};
      if ((i + 1) % m % 2 == 1) c.push_back(cur[(i + 1) % m]);  // next removed
      const std::size_t prev = (i + m - 1) % m;
      if (prev % 2 == 1) c.push_back(cur[prev]);  // previous removed
      cands.push_back(std::move(c));
    }
    fine_cands.push_back(std::move(cands));
    fine_layers.push_back(survivors);
    cur = fine_layers.back();
  }

  // Assemble coarse-to-fine.
  const std::size_t K = fine_layers.size() - 1;
  num_levels_ = fine_layers.size();
  h.layer.resize(K + 1);
  h.cand.resize(K + 1);
  for (std::size_t k = 0; k <= K; ++k) h.layer[k] = fine_layers[K - k];
  for (std::size_t l = 1; l <= K; ++l) h.cand[l] = fine_cands[K - l];
  dag_ = build_extreme_dag(h);
}

std::vector<msearch::Query> DKPolygon::make_line_queries(
    const std::vector<Line>& lines) const {
  auto qs = std::vector<msearch::Query>(2 * lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (int side = 0; side < 2; ++side) {
      auto& q = qs[2 * i + static_cast<std::size_t>(side)];
      q.qid = static_cast<std::int32_t>(2 * i + static_cast<std::size_t>(side));
      const Scalar sgn = side == 0 ? 1 : -1;
      q.key[0] = sgn * lines[i].a;
      q.key[1] = sgn * lines[i].b;
      q.key[2] = 0;
    }
  }
  return qs;
}

std::vector<bool> DKPolygon::combine_line_answers(
    const std::vector<Line>& lines, const std::vector<msearch::Query>& qs) {
  MS_CHECK(qs.size() == 2 * lines.size());
  std::vector<bool> out(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    // max(ax+by) >= c and min(ax+by) <= c <=> the line meets the polygon.
    const std::int64_t maxdot = qs[2 * i].acc0;
    const std::int64_t mindot = -qs[2 * i + 1].acc0;  // max of -d
    out[i] = maxdot >= lines[i].c && mindot <= lines[i].c;
  }
  return out;
}

msearch::Vid DKPolygon::PointTangent::next(const msearch::VertexRecord& v,
                                           msearch::Query& q) const {
  const Point2 p{q.key[0], q.key[1]};
  const int side = q.key[2] >= 0 ? 1 : -1;
  const Point2 cand{v.key[0], v.key[1]};
  const auto ring_len = static_cast<std::int32_t>(v.key[3]);
  const bool ring_edge = v.key[3] > 1;
  const msearch::Vid ring_next = ring_edge ? v.nbr[0] : msearch::kNoVertex;
  const msearch::Vid descend =
      v.key[6] ? v.nbr[ring_edge ? 1 : 0] : msearch::kNoVertex;

  bool better = q.state == 0;
  if (!better) {
    const Point2 best{q.acc0, q.acc1};
    const int o = side * orient2d(p, best, cand);
    if (o > 0) {
      better = true;
    } else if (o == 0) {
      // Collinear with the current best: the farther point witnesses the
      // same tangent line; prefer it for determinism.
      const auto d2 = [&](const Point2& a) {
        const __int128 dx = a.x - p.x, dy = a.y - p.y;
        return dx * dx + dy * dy;
      };
      better = d2(cand) > d2(best);
    }
  }
  if (better) {
    q.acc0 = cand.x;
    q.acc1 = cand.y;
    q.result = static_cast<std::int32_t>(v.key[4]);
  }
  ++q.state;
  if (q.state < ring_len) return ring_next;
  if (static_cast<std::int32_t>(v.key[4]) == q.result) {
    q.state = 0;
    return descend;
  }
  MS_CHECK_MSG(q.state < 2 * ring_len + 2, "tangent ring walk diverged");
  return ring_next;
}

bool DKPolygon::point_outside(const Point2& p) const {
  for (std::size_t i = 0; i < poly_.size(); ++i)
    if (orient2d(poly_[i], poly_[(i + 1) % poly_.size()], p) < 0) return true;
  return false;
}

bool DKPolygon::is_tangent_vertex(const Point2& p, std::int32_t t,
                                  int side) const {
  if (t < 0 || static_cast<std::size_t>(t) >= poly_.size()) return false;
  const Point2 tv = poly_[static_cast<std::size_t>(t)];
  for (const auto& w : poly_)
    if (side * orient2d(p, tv, w) > 0) return false;
  return true;
}

std::int64_t DKPolygon::extreme_dot_brute(const Point2& d) const {
  std::int64_t best = std::numeric_limits<std::int64_t>::min();
  for (const auto& p : poly_)
    best = std::max(best, dot3(Point3{d.x, d.y, 0}, Point3{p.x, p.y, 0}));
  return best;
}

bool DKPolygon::line_intersects_brute(const Line& l) const {
  std::int64_t lo = std::numeric_limits<std::int64_t>::max();
  std::int64_t hi = std::numeric_limits<std::int64_t>::min();
  for (const auto& p : poly_) {
    const auto v = dot3(Point3{l.a, l.b, 0}, Point3{p.x, p.y, 0});
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  return lo <= l.c && l.c <= hi;
}

}  // namespace meshsearch::geom
