#include "geometry/hull3d.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "multisearch/validate.hpp"
#include "util/check.hpp"

namespace meshsearch::geom {

namespace {

struct Face {
  std::array<std::int32_t, 3> v{};
  bool alive = false;
  std::vector<std::int32_t> conflicts;  ///< point ids strictly seeing this face
};

/// p strictly sees face f (is on its positive/outside half-space).
bool sees(const std::vector<Point3>& pts, const Face& f, std::int32_t p) {
  return orient3d(pts[static_cast<std::size_t>(f.v[0])],
                  pts[static_cast<std::size_t>(f.v[1])],
                  pts[static_cast<std::size_t>(f.v[2])],
                  pts[static_cast<std::size_t>(p)]) > 0;
}

std::uint64_t edge_key(std::int32_t a, std::int32_t b) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
         static_cast<std::uint32_t>(b);
}

}  // namespace

Hull3 convex_hull3(const std::vector<Point3>& pts, util::Rng& rng) {
  const std::size_t n = pts.size();
  if (n < 4) msearch::invalid_input("hull3 needs at least 4 points", "hull3");
  for (std::size_t i = 0; i < n; ++i) {
    const auto& p = pts[i];
    if (std::abs(p.x) > kMaxCoord || std::abs(p.y) > kMaxCoord ||
        std::abs(p.z) > kMaxCoord)
      msearch::invalid_input("point " + std::to_string(i) +
                                 " outside the +-kMaxCoord predicate bound",
                             "hull3");
  }
  auto order32 = util::random_permutation(n, rng);
  std::vector<std::int32_t> order(order32.begin(), order32.end());

  // Seed: find 4 points in the random order that are affinely independent,
  // moving them to the front.
  {
    std::size_t j = 1;
    // second point distinct from first.
    while (j < n && pts[static_cast<std::size_t>(order[j])] ==
                        pts[static_cast<std::size_t>(order[0])])
      ++j;
    if (j >= n) msearch::invalid_input("all points identical", "hull3");
    std::swap(order[1], order[j]);
    // third point not collinear.
    auto collinear = [&](std::int32_t a, std::int32_t b, std::int32_t c) {
      const auto &A = pts[static_cast<std::size_t>(a)],
                 &B = pts[static_cast<std::size_t>(b)],
                 &C = pts[static_cast<std::size_t>(c)];
      const __int128 ux = B.x - A.x, uy = B.y - A.y, uz = B.z - A.z;
      const __int128 vx = C.x - A.x, vy = C.y - A.y, vz = C.z - A.z;
      return uy * vz - uz * vy == 0 && uz * vx - ux * vz == 0 &&
             ux * vy - uy * vx == 0;
    };
    j = 2;
    while (j < n && collinear(order[0], order[1], order[j])) ++j;
    if (j >= n) msearch::invalid_input("all points collinear", "hull3");
    std::swap(order[2], order[j]);
    j = 3;
    while (j < n && orient3d(pts[static_cast<std::size_t>(order[0])],
                             pts[static_cast<std::size_t>(order[1])],
                             pts[static_cast<std::size_t>(order[2])],
                             pts[static_cast<std::size_t>(order[j])]) == 0)
      ++j;
    if (j >= n) msearch::invalid_input("all points coplanar", "hull3");
    std::swap(order[3], order[j]);
  }

  std::vector<Face> faces;
  // Inverse conflict index: point -> faces it sees (lazily pruned of dead
  // faces); keeps each insertion's work proportional to its conflict size.
  std::vector<std::vector<std::int32_t>> point_faces(n);
  std::unordered_map<std::uint64_t, std::int32_t> edge_face;
  auto add_face = [&](std::int32_t a, std::int32_t b, std::int32_t c) {
    Face f;
    f.v = {a, b, c};
    f.alive = true;
    faces.push_back(std::move(f));
    const auto id = static_cast<std::int32_t>(faces.size() - 1);
    edge_face[edge_key(a, b)] = id;
    edge_face[edge_key(b, c)] = id;
    edge_face[edge_key(c, a)] = id;
    return id;
  };

  // Initial tetrahedron, oriented outward.
  {
    std::int32_t a = order[0], b = order[1], c = order[2], d = order[3];
    if (orient3d(pts[static_cast<std::size_t>(a)],
                 pts[static_cast<std::size_t>(b)],
                 pts[static_cast<std::size_t>(c)],
                 pts[static_cast<std::size_t>(d)]) > 0)
      std::swap(b, c);
    // Now d is on the negative side of (a,b,c): all faces below are outward.
    add_face(a, b, c);
    add_face(a, c, d);
    add_face(c, b, d);
    add_face(b, a, d);
    for (std::size_t i = 4; i < n; ++i) {
      const std::int32_t p = order[i];
      for (std::int32_t f = 0; f < 4; ++f)
        if (sees(pts, faces[static_cast<std::size_t>(f)], p)) {
          faces[static_cast<std::size_t>(f)].conflicts.push_back(p);
          point_faces[static_cast<std::size_t>(p)].push_back(f);
        }
    }
  }

  std::vector<std::int32_t> visible;
  for (std::size_t i = 4; i < n; ++i) {
    const std::int32_t p = order[i];
    // Seeds: alive faces in p's inverse conflict list.
    visible.clear();
    for (const auto f : point_faces[static_cast<std::size_t>(p)])
      if (faces[static_cast<std::size_t>(f)].alive)
        visible.push_back(f);
    point_faces[static_cast<std::size_t>(p)].clear();
    if (visible.empty()) continue;  // p inside (or on) the current hull
    // The conflict lists make the scan above O(total conflicts); recompute
    // the full visible set from the seeds to be safe against coplanarity:
    // flood fill across edges.
    std::unordered_set<std::int32_t> vis(visible.begin(), visible.end());
    std::vector<std::int32_t> stack(visible.begin(), visible.end());
    while (!stack.empty()) {
      const auto f = stack.back();
      stack.pop_back();
      const auto& fv = faces[static_cast<std::size_t>(f)].v;
      for (int e = 0; e < 3; ++e) {
        const auto it = edge_face.find(
            edge_key(fv[static_cast<std::size_t>((e + 1) % 3)],
                     fv[static_cast<std::size_t>(e)]));
        if (it == edge_face.end()) continue;
        const auto g = it->second;
        if (vis.count(g) || !faces[static_cast<std::size_t>(g)].alive) continue;
        if (sees(pts, faces[static_cast<std::size_t>(g)], p)) {
          vis.insert(g);
          stack.push_back(g);
        }
      }
    }
    visible.assign(vis.begin(), vis.end());
    std::sort(visible.begin(), visible.end());

    // Horizon: directed edges of visible faces whose twin is not visible.
    struct HorizonEdge {
      std::int32_t a, b;      ///< directed as in the visible face
      std::int32_t vis_face;  ///< the visible face it came from
      std::int32_t inv_face;  ///< the surviving face across it
    };
    std::vector<HorizonEdge> horizon;
    for (const auto f : visible) {
      const auto& fv = faces[static_cast<std::size_t>(f)].v;
      for (int e = 0; e < 3; ++e) {
        const std::int32_t a = fv[static_cast<std::size_t>(e)];
        const std::int32_t b = fv[static_cast<std::size_t>((e + 1) % 3)];
        const auto it = edge_face.find(edge_key(b, a));
        if (it == edge_face.end()) continue;
        const auto g = it->second;
        if (!vis.count(g)) horizon.push_back({a, b, f, g});
      }
    }
    MS_CHECK_MSG(!horizon.empty(), "visible region has no horizon");

    // Retire visible faces; collect their conflicts as candidates.
    std::vector<std::int32_t> candidates;
    for (const auto f : visible) {
      auto& ff = faces[static_cast<std::size_t>(f)];
      ff.alive = false;
      candidates.insert(candidates.end(), ff.conflicts.begin(),
                        ff.conflicts.end());
      ff.conflicts.clear();
      ff.conflicts.shrink_to_fit();
      for (int e = 0; e < 3; ++e) {
        const auto key = edge_key(ff.v[static_cast<std::size_t>(e)],
                                  ff.v[static_cast<std::size_t>((e + 1) % 3)]);
        auto it = edge_face.find(key);
        if (it != edge_face.end() && it->second == f) edge_face.erase(it);
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    // New fan of faces around p.
    for (const auto& he : horizon) {
      const auto nf = add_face(he.a, he.b, p);
      auto& f = faces[static_cast<std::size_t>(nf)];
      for (const auto q : candidates) {
        if (q == p) continue;
        if (sees(pts, f, q)) {
          f.conflicts.push_back(q);
          point_faces[static_cast<std::size_t>(q)].push_back(nf);
        }
      }
      // Points seen only by the surviving neighbour may also see the new
      // face across the horizon ridge.
      for (const auto q :
           faces[static_cast<std::size_t>(he.inv_face)].conflicts) {
        if (q == p) continue;
        if (std::find(f.conflicts.begin(), f.conflicts.end(), q) !=
            f.conflicts.end())
          continue;
        if (sees(pts, f, q)) {
          f.conflicts.push_back(q);
          point_faces[static_cast<std::size_t>(q)].push_back(nf);
        }
      }
    }
  }

  Hull3 out;
  std::unordered_set<std::int32_t> vset;
  for (const auto& f : faces) {
    if (!f.alive) continue;
    out.faces.push_back(f.v);
    for (const auto v : f.v) vset.insert(v);
  }
  out.vertices.assign(vset.begin(), vset.end());
  std::sort(out.vertices.begin(), out.vertices.end());
  return out;
}

std::vector<std::vector<std::int32_t>> hull_adjacency(const Hull3& hull,
                                                      std::size_t num_pts) {
  std::vector<std::vector<std::int32_t>> adj(num_pts);
  auto link = [&](std::int32_t a, std::int32_t b) {
    auto& la = adj[static_cast<std::size_t>(a)];
    if (std::find(la.begin(), la.end(), b) == la.end()) la.push_back(b);
  };
  for (const auto& f : hull.faces)
    for (int e = 0; e < 3; ++e) {
      link(f[static_cast<std::size_t>(e)], f[static_cast<std::size_t>((e + 1) % 3)]);
      link(f[static_cast<std::size_t>((e + 1) % 3)], f[static_cast<std::size_t>(e)]);
    }
  return adj;
}

std::vector<Point3> random_points_in_ball(std::size_t count, Scalar radius,
                                          util::Rng& rng) {
  MS_CHECK(radius >= 4 && radius <= kMaxCoord);
  std::vector<Point3> pts;
  std::unordered_set<std::uint64_t> seen;
  while (pts.size() < count) {
    const Scalar x = rng.uniform_range(-radius, radius);
    const Scalar y = rng.uniform_range(-radius, radius);
    const Scalar z = rng.uniform_range(-radius, radius);
    if (x * x + y * y + z * z > radius * radius) continue;
    const std::uint64_t key = util::mix64(static_cast<std::uint64_t>(
        (x + radius) * 4 * radius * radius + (y + radius) * 2 * radius +
        (z + radius)));
    if (!seen.insert(key).second) continue;
    pts.push_back(Point3{x, y, z});
  }
  return pts;
}

std::vector<Point3> random_points_on_sphere(std::size_t count, Scalar radius,
                                            util::Rng& rng) {
  MS_CHECK(radius >= 16 && radius <= kMaxCoord);
  std::vector<Point3> pts;
  std::unordered_set<std::uint64_t> seen;
  const double r = static_cast<double>(radius);
  while (pts.size() < count) {
    // Marsaglia sphere sampling, rounded to the grid.
    double u = 2 * rng.uniform_real() - 1, v = 2 * rng.uniform_real() - 1;
    const double s = u * u + v * v;
    if (s >= 1 || s == 0) continue;
    const double m = std::sqrt(1 - s);
    const Scalar x = static_cast<Scalar>(std::llround(2 * u * m * r));
    const Scalar y = static_cast<Scalar>(std::llround(2 * v * m * r));
    const Scalar z = static_cast<Scalar>(std::llround((1 - 2 * s) * r));
    const std::uint64_t key = util::mix64(static_cast<std::uint64_t>(
        (x + radius) * 4 * radius * radius + (y + radius) * 2 * radius +
        (z + radius)));
    if (!seen.insert(key).second) continue;
    pts.push_back(Point3{x, y, z});
  }
  return pts;
}

std::int32_t extreme_point_brute(const std::vector<Point3>& pts,
                                 const Point3& d) {
  MS_CHECK(!pts.empty());
  std::int32_t best = 0;
  std::int64_t best_dot = dot3(d, pts[0]);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    const auto v = dot3(d, pts[i]);
    if (v > best_dot) {
      best_dot = v;
      best = static_cast<std::int32_t>(i);
    }
  }
  return best;
}

}  // namespace meshsearch::geom
