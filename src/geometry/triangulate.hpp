// Incremental triangulation of a planar point set inside a big bounding
// triangle — the substrate that Kirkpatrick's subdivision hierarchy (§5,
// [Kir83]) coarsens. Each insertion splits the containing triangle into
// three (or, for a point on an edge, the two incident triangles into four);
// the split history forms a DAG used to locate subsequent insertions in
// expected O(log n) for random orders. No Delaunay flipping: any valid
// triangulation suffices for point location.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "geometry/predicates.hpp"

namespace meshsearch::geom {

class Triangulation {
 public:
  /// Triangulate `points` (distinct, |coords| < radius) inside a bounding
  /// triangle of circumscribing size ~3*radius. Vertices 0..2 are the
  /// bounding corners; input point i becomes vertex i+3.
  Triangulation(std::vector<Point2> points, Scalar radius);

  struct Tri {
    std::array<std::int32_t, 3> v{};      ///< vertex indices, ccw
    std::array<std::int32_t, 3> child{};  ///< history children (split results)
    std::int32_t nchild = 0;
    bool alive = false;
  };

  const std::vector<Point2>& vertices() const { return verts_; }
  const std::vector<Tri>& history() const { return tris_; }

  /// Ids of the triangles of the final triangulation.
  std::vector<std::int32_t> alive_ids() const;

  /// Corner points of triangle `id`.
  std::array<Point2, 3> corners(std::int32_t id) const;

  /// Walk the history DAG to an alive triangle containing p (closed
  /// containment; any containing triangle may be returned for edge points).
  /// p must be inside the bounding triangle.
  std::int32_t locate(const Point2& p) const;

 private:
  std::int32_t split_containing(const Point2& p, std::int32_t vid);

  std::vector<Point2> verts_;
  std::vector<Tri> tris_;
};

}  // namespace meshsearch::geom
