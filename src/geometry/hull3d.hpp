// 3-d convex hulls: randomized incremental construction with conflict
// lists (Clarkson–Shor style), exact integer predicates. Substrate for the
// Dobkin–Kirkpatrick polytope hierarchy (§5, Theorem 8).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "geometry/predicates.hpp"
#include "util/rng.hpp"

namespace meshsearch::geom {

struct Hull3 {
  /// Outward-oriented triangular facets (indices into the input points).
  std::vector<std::array<std::int32_t, 3>> faces;
  /// Sorted ids of the points that are hull vertices.
  std::vector<std::int32_t> vertices;
};

/// Convex hull of `pts` (at least 4 non-coplanar points; |coords| <=
/// kMaxCoord). Points interior to the hull or coplanar-inside a facet are
/// simply absent from the output. Insertion order is randomized with `rng`.
Hull3 convex_hull3(const std::vector<Point3>& pts, util::Rng& rng);

/// Adjacency lists (over point ids) of the hull's 1-skeleton.
std::vector<std::vector<std::int32_t>> hull_adjacency(const Hull3& hull,
                                                      std::size_t num_pts);

/// `count` points uniform in the ball of the given radius (radius <=
/// kMaxCoord / 2), deduplicated.
std::vector<Point3> random_points_in_ball(std::size_t count, Scalar radius,
                                          util::Rng& rng);

/// `count` points on (near) the sphere of the given radius — most become
/// hull vertices, the interesting case for the DK hierarchy.
std::vector<Point3> random_points_on_sphere(std::size_t count, Scalar radius,
                                            util::Rng& rng);

/// Brute-force extreme point: index into pts maximizing dot(d, p).
std::int32_t extreme_point_brute(const std::vector<Point3>& pts,
                                 const Point3& d);

}  // namespace meshsearch::geom
