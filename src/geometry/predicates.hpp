// Exact geometric predicates on integer coordinates.
//
// All meshsearch geometry works on integer grids with |coordinate| <=
// kMaxCoord, so that every predicate below is exact using __int128
// arithmetic — no epsilons, fully deterministic tests. Inputs are validated
// by the structures that ingest points.
#pragma once

#include <array>
#include <cstdint>

namespace meshsearch::geom {

using Scalar = std::int64_t;

/// Coordinate bound ensuring orient3d's determinant fits in __int128.
inline constexpr Scalar kMaxCoord = 1 << 20;

struct Point2 {
  Scalar x = 0, y = 0;
  friend bool operator==(const Point2&, const Point2&) = default;
};

struct Point3 {
  Scalar x = 0, y = 0, z = 0;
  friend bool operator==(const Point3&, const Point3&) = default;
};

/// Sign of the cross product (b-a) x (c-a): > 0 if a,b,c make a left turn
/// (counter-clockwise), < 0 right turn, 0 collinear.
int orient2d(const Point2& a, const Point2& b, const Point2& c);

/// Sign of det[b-a; c-a; d-a]: > 0 iff (a,b,c) appears counter-clockwise
/// when viewed from d, 0 iff coplanar.
int orient3d(const Point3& a, const Point3& b, const Point3& c,
             const Point3& d);

/// Dot product d . p (exact in __int128, returned as Scalar after checking
/// it fits; callers bound coordinates by kMaxCoord so it always does).
std::int64_t dot3(const Point3& d, const Point3& p);

/// p inside or on the closed triangle (a,b,c); orientation of the triangle
/// may be either way (degenerate triangles are rejected).
bool point_in_triangle(const Point2& p, const Point2& a, const Point2& b,
                       const Point2& c);

/// p strictly inside the open triangle (a,b,c).
bool point_in_triangle_strict(const Point2& p, const Point2& a,
                              const Point2& b, const Point2& c);

/// Segments (a,b) and (c,d) cross at a single interior point of both.
bool segments_properly_cross(const Point2& a, const Point2& b,
                             const Point2& c, const Point2& d);

/// Closed triangles (a1,b1,c1) and (a2,b2,c2) have intersecting interiors.
/// Exact separating-axis test; both triangles must be non-degenerate.
bool triangles_overlap(const std::array<Point2, 3>& t1,
                       const std::array<Point2, 3>& t2);

/// Twice the signed area of triangle (a,b,c) as __int128 sign-safe Scalar
/// pair is unnecessary; exposed as the sign plus magnitude check helper.
bool triangle_degenerate(const Point2& a, const Point2& b, const Point2& c);

}  // namespace meshsearch::geom
