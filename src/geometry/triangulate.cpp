#include "geometry/triangulate.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace meshsearch::geom {

Triangulation::Triangulation(std::vector<Point2> points, Scalar radius) {
  MS_CHECK(radius >= 2 && 4 * radius <= kMaxCoord);
  // Bounding triangle comfortably containing the disk of `radius`.
  verts_.push_back(Point2{-4 * radius, -3 * radius});
  verts_.push_back(Point2{4 * radius, -3 * radius});
  verts_.push_back(Point2{0, 4 * radius});
  Tri root;
  root.v = {0, 1, 2};
  root.alive = true;
  MS_CHECK(orient2d(verts_[0], verts_[1], verts_[2]) > 0);
  tris_.push_back(root);

  for (const auto& p : points) {
    MS_CHECK_MSG(std::abs(p.x) < radius && std::abs(p.y) < radius,
                 "point outside declared radius");
    const auto vid = static_cast<std::int32_t>(verts_.size());
    verts_.push_back(p);
    split_containing(p, vid);
  }
}

std::vector<std::int32_t> Triangulation::alive_ids() const {
  std::vector<std::int32_t> out;
  for (std::size_t i = 0; i < tris_.size(); ++i)
    if (tris_[i].alive) out.push_back(static_cast<std::int32_t>(i));
  return out;
}

std::array<Point2, 3> Triangulation::corners(std::int32_t id) const {
  const auto& t = tris_[static_cast<std::size_t>(id)];
  return {verts_[static_cast<std::size_t>(t.v[0])],
          verts_[static_cast<std::size_t>(t.v[1])],
          verts_[static_cast<std::size_t>(t.v[2])]};
}

std::int32_t Triangulation::locate(const Point2& p) const {
  std::int32_t cur = 0;
  MS_CHECK_MSG(point_in_triangle(p, verts_[0], verts_[1], verts_[2]),
               "locate: point outside the bounding triangle");
  while (!tris_[static_cast<std::size_t>(cur)].alive) {
    const auto& t = tris_[static_cast<std::size_t>(cur)];
    std::int32_t next = -1;
    for (std::int32_t k = 0; k < t.nchild; ++k) {
      const auto c = t.child[static_cast<std::size_t>(k)];
      const auto tc = corners(c);
      if (point_in_triangle(p, tc[0], tc[1], tc[2])) {
        next = c;
        break;
      }
    }
    MS_CHECK_MSG(next >= 0, "locate: history DAG lost the point");
    cur = next;
  }
  return cur;
}

std::int32_t Triangulation::split_containing(const Point2& p,
                                             std::int32_t vid) {
  const std::int32_t host = locate(p);
  // Copy: add_tri below grows tris_ and would invalidate a reference.
  const auto hv = tris_[static_cast<std::size_t>(host)].v;
  const auto hc = corners(host);
  // Which edge (if any) contains p? Edge k is (v[k], v[k+1]).
  std::int32_t on_edge = -1;
  for (std::int32_t k = 0; k < 3; ++k) {
    if (orient2d(hc[static_cast<std::size_t>(k)],
                 hc[static_cast<std::size_t>((k + 1) % 3)], p) == 0) {
      MS_CHECK_MSG(on_edge < 0, "duplicate point inserted");
      on_edge = k;
    }
  }
  auto add_tri = [&](std::int32_t a, std::int32_t b, std::int32_t c) {
    Tri t;
    t.v = {a, b, c};
    t.alive = true;
    MS_CHECK_MSG(orient2d(verts_[static_cast<std::size_t>(a)],
                          verts_[static_cast<std::size_t>(b)],
                          verts_[static_cast<std::size_t>(c)]) > 0,
                 "degenerate split triangle");
    tris_.push_back(t);
    return static_cast<std::int32_t>(tris_.size() - 1);
  };
  auto retire = [&](std::int32_t id, std::initializer_list<std::int32_t> kids) {
    auto& t = tris_[static_cast<std::size_t>(id)];
    t.alive = false;
    t.nchild = 0;
    for (const auto k : kids) t.child[static_cast<std::size_t>(t.nchild++)] = k;
  };

  if (on_edge < 0) {
    // Interior: split host into three.
    const auto t0 = add_tri(hv[0], hv[1], vid);
    const auto t1 = add_tri(hv[1], hv[2], vid);
    const auto t2 = add_tri(hv[2], hv[0], vid);
    retire(host, {t0, t1, t2});
    return t0;
  }
  // On an edge: split host and (if interior edge) the triangle across it.
  const std::int32_t a = hv[static_cast<std::size_t>(on_edge)];
  const std::int32_t b = hv[static_cast<std::size_t>((on_edge + 1) % 3)];
  const std::int32_t c = hv[static_cast<std::size_t>((on_edge + 2) % 3)];
  const auto h0 = add_tri(a, vid, c);
  const auto h1 = add_tri(vid, b, c);
  retire(host, {h0, h1});
  // Find the alive neighbour sharing edge (b, a) by scanning alive
  // triangles incident to both a and b (history makes this rare and cheap
  // relative to a full adjacency structure).
  std::int32_t other = -1;
  for (std::size_t i = 0; i < tris_.size(); ++i) {
    const auto& t = tris_[i];
    if (!t.alive || static_cast<std::int32_t>(i) == h0 ||
        static_cast<std::int32_t>(i) == h1)
      continue;
    for (std::int32_t k = 0; k < 3; ++k)
      if (t.v[static_cast<std::size_t>(k)] == b &&
          t.v[static_cast<std::size_t>((k + 1) % 3)] == a) {
        other = static_cast<std::int32_t>(i);
        break;
      }
    if (other >= 0) break;
  }
  if (other >= 0) {
    const auto& ot = tris_[static_cast<std::size_t>(other)];
    std::int32_t k = 0;
    while (!(ot.v[static_cast<std::size_t>(k)] == b &&
             ot.v[static_cast<std::size_t>((k + 1) % 3)] == a))
      ++k;
    const std::int32_t d = ot.v[static_cast<std::size_t>((k + 2) % 3)];
    const auto o0 = add_tri(b, vid, d);
    const auto o1 = add_tri(vid, a, d);
    retire(other, {o0, o1});
  }
  return h0;
}

}  // namespace meshsearch::geom
