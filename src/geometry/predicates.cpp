#include "geometry/predicates.hpp"

#include "util/check.hpp"

namespace meshsearch::geom {

namespace {
using Wide = __int128;

int sign_of(Wide v) { return v > 0 ? 1 : (v < 0 ? -1 : 0); }
}  // namespace

int orient2d(const Point2& a, const Point2& b, const Point2& c) {
  const Wide abx = b.x - a.x, aby = b.y - a.y;
  const Wide acx = c.x - a.x, acy = c.y - a.y;
  return sign_of(abx * acy - aby * acx);
}

int orient3d(const Point3& a, const Point3& b, const Point3& c,
             const Point3& d) {
  const Wide adx = b.x - a.x, ady = b.y - a.y, adz = b.z - a.z;
  const Wide bdx = c.x - a.x, bdy = c.y - a.y, bdz = c.z - a.z;
  const Wide cdx = d.x - a.x, cdy = d.y - a.y, cdz = d.z - a.z;
  const Wide det = adx * (bdy * cdz - bdz * cdy) -
                   ady * (bdx * cdz - bdz * cdx) +
                   adz * (bdx * cdy - bdy * cdx);
  return sign_of(det);
}

std::int64_t dot3(const Point3& d, const Point3& p) {
  const Wide v = Wide(d.x) * p.x + Wide(d.y) * p.y + Wide(d.z) * p.z;
  MS_DCHECK(v <= Wide(INT64_MAX) && v >= Wide(INT64_MIN));
  return static_cast<std::int64_t>(v);
}

bool triangle_degenerate(const Point2& a, const Point2& b, const Point2& c) {
  return orient2d(a, b, c) == 0;
}

bool point_in_triangle(const Point2& p, const Point2& a, const Point2& b,
                       const Point2& c) {
  const int o = orient2d(a, b, c);
  MS_DCHECK(o != 0);
  // Normalize to counter-clockwise.
  const Point2 &v0 = a, &v1 = o > 0 ? b : c, &v2 = o > 0 ? c : b;
  return orient2d(v0, v1, p) >= 0 && orient2d(v1, v2, p) >= 0 &&
         orient2d(v2, v0, p) >= 0;
}

bool point_in_triangle_strict(const Point2& p, const Point2& a,
                              const Point2& b, const Point2& c) {
  const int o = orient2d(a, b, c);
  MS_DCHECK(o != 0);
  const Point2 &v0 = a, &v1 = o > 0 ? b : c, &v2 = o > 0 ? c : b;
  return orient2d(v0, v1, p) > 0 && orient2d(v1, v2, p) > 0 &&
         orient2d(v2, v0, p) > 0;
}

bool segments_properly_cross(const Point2& a, const Point2& b,
                             const Point2& c, const Point2& d) {
  const int o1 = orient2d(a, b, c), o2 = orient2d(a, b, d);
  const int o3 = orient2d(c, d, a), o4 = orient2d(c, d, b);
  return o1 * o2 < 0 && o3 * o4 < 0;
}

bool triangles_overlap(const std::array<Point2, 3>& t1,
                       const std::array<Point2, 3>& t2) {
  // Separating axis test for convex polygons with exact orientations:
  // the interiors are disjoint iff some edge of either triangle has all
  // vertices of the other on its non-interior side (<= 0 when the triangle
  // is oriented counter-clockwise).
  auto ccw = [](std::array<Point2, 3> t) {
    if (orient2d(t[0], t[1], t[2]) < 0) std::swap(t[1], t[2]);
    return t;
  };
  const auto p = ccw(t1), q = ccw(t2);
  auto separated_by_edge_of = [](const std::array<Point2, 3>& u,
                                 const std::array<Point2, 3>& v) {
    for (int i = 0; i < 3; ++i) {
      const Point2& e0 = u[static_cast<std::size_t>(i)];
      const Point2& e1 = u[static_cast<std::size_t>((i + 1) % 3)];
      bool all_out = true;
      for (const auto& w : v) all_out &= orient2d(e0, e1, w) <= 0;
      if (all_out) return true;
    }
    return false;
  };
  return !separated_by_edge_of(p, q) && !separated_by_edge_of(q, p);
}

}  // namespace meshsearch::geom
