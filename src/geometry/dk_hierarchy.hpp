// Dobkin–Kirkpatrick hierarchical representations of convex polytopes
// (§5, Theorem 8: multiple tangent plane determination / directional
// extreme-vertex queries), as hierarchical-DAG multisearch structures.
//
// Hierarchy: P_0 = the full polytope; P_{k+1} = conv(V_k \ I_k) for an
// independent set I_k of vertices with degree <= 12 in P_k's 1-skeleton.
// Every surviving vertex stays a hull vertex, and the key DK property
// holds: the extreme vertex of P_k in direction d is either the extreme
// vertex u of P_{k+1} or one of u's removed neighbours in P_k (a d-monotone
// path from u ascends through at most one removed vertex — two consecutive
// removed vertices would violate independence).
//
// DAG encoding ("candidate rings"): a query must take the max of dot(d, .)
// over u's candidate set, but a record holds one point. Every (parent u,
// candidate z) pair becomes a slot vertex storing z's coordinates; a
// parent's slots form a cyclic ring (within-level edges). A query walks the
// full ring recording the best candidate, keeps walking to the best slot
// (<= one more lap), and descends to that candidate's own ring at the next
// level. level_work = 2 * max ring length, the generalized model of §3
// supported by Algorithm 1.
//
// The same machinery serves the 2-d (convex polygon) hierarchy in
// geometry/dk_polygon.hpp — points with z = 0.
#pragma once

#include <cstdint>
#include <vector>

#include "geometry/hull3d.hpp"
#include "geometry/predicates.hpp"
#include "multisearch/hierarchical.hpp"

namespace meshsearch::geom {

/// Coarse-to-fine hierarchy description consumed by build_extreme_dag.
struct HierarchyLevels {
  std::vector<Point3> pts;  ///< coordinates of every vertex id used
  /// layer[0] = coarsest vertex set (<= ~8 ids) ... layer.back() = finest.
  std::vector<std::vector<std::int32_t>> layer;
  /// cand[l][i] = candidate ids (into pts) in layer l for the i-th vertex u
  /// of layer l-1: u itself first, then u's removed neighbours. l >= 1.
  std::vector<std::vector<std::vector<std::int32_t>>> cand;
};

/// The slot DAG over a hierarchy plus its derived parameters.
struct ExtremeDag {
  msearch::DistributedGraph dag;
  std::int32_t level_work = 2;
  double mu = 2.0;
  msearch::Vid root = 0;

  msearch::HierarchicalDag hierarchical_dag() const {
    return msearch::HierarchicalDag(dag, mu, level_work);
  }
};

ExtremeDag build_extreme_dag(const HierarchyLevels& h);

/// Directional extreme-vertex program: q.key[0..2] = direction d.
/// Result: q.result = extreme vertex id, q.acc0 = max dot(d, v).
/// The supporting (tangent) plane is { x : dot(d, x) = q.acc0 }.
struct ExtremeQuery {
  msearch::Vid root;
  msearch::Vid start(msearch::Query&) const { return root; }
  msearch::Vid next(const msearch::VertexRecord& v, msearch::Query& q) const;
};

/// 3-d DK hierarchy over the convex hull of `pts`.
class DKHierarchy3 {
 public:
  /// pts: at least 4 non-coplanar points, |coords| <= kMaxCoord.
  DKHierarchy3(std::vector<Point3> pts, util::Rng& rng,
               unsigned max_degree = 12);

  const ExtremeDag& extreme_dag() const { return dag_; }
  ExtremeQuery extreme_program() const { return ExtremeQuery{dag_.root}; }
  std::size_t hierarchy_levels() const { return num_levels_; }
  const std::vector<Point3>& points() const { return pts_; }
  /// Vertex ids of the finest hull P_0 (the answer space).
  const std::vector<std::int32_t>& hull_vertices() const { return hull_verts_; }

 private:
  std::vector<Point3> pts_;
  std::vector<std::int32_t> hull_verts_;
  std::size_t num_levels_ = 0;
  ExtremeDag dag_;
};

}  // namespace meshsearch::geom
