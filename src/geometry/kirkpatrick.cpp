#include "geometry/kirkpatrick.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "multisearch/validate.hpp"
#include "util/check.hpp"

namespace meshsearch::geom {

namespace {

/// Ear-clip a simple ccw polygon (vertex ids into verts) into ccw triangles.
std::vector<std::array<std::int32_t, 3>> ear_clip(
    std::vector<std::int32_t> poly, const std::vector<Point2>& verts) {
  std::vector<std::array<std::int32_t, 3>> out;
  auto pt = [&](std::int32_t id) { return verts[static_cast<std::size_t>(id)]; };
  while (poly.size() > 3) {
    bool clipped = false;
    for (std::size_t i = 0; i < poly.size(); ++i) {
      const std::size_t n = poly.size();
      const std::int32_t a = poly[(i + n - 1) % n], b = poly[i],
                         c = poly[(i + 1) % n];
      if (orient2d(pt(a), pt(b), pt(c)) <= 0) continue;  // reflex/flat
      bool blocked = false;
      for (std::size_t j = 0; j < n && !blocked; ++j) {
        const std::int32_t w = poly[j];
        if (w == a || w == b || w == c) continue;
        blocked = point_in_triangle(pt(w), pt(a), pt(b), pt(c));
      }
      if (blocked) continue;
      out.push_back({a, b, c});
      poly.erase(poly.begin() + static_cast<std::ptrdiff_t>(i));
      clipped = true;
      break;
    }
    MS_CHECK_MSG(clipped, "ear clipping stalled on a star polygon");
  }
  MS_CHECK(poly.size() == 3);
  MS_CHECK(orient2d(pt(poly[0]), pt(poly[1]), pt(poly[2])) > 0);
  out.push_back({poly[0], poly[1], poly[2]});
  return out;
}

}  // namespace

Kirkpatrick::Kirkpatrick(std::vector<Point2> points, Scalar radius,
                         unsigned max_degree)
    : points_(std::move(points)), radius_(radius), max_degree_(max_degree) {
  if (max_degree_ < 4)
    msearch::invalid_input("Kirkpatrick needs max_degree >= 4", "kirkpatrick");
  if (points_.empty())
    msearch::invalid_input("Kirkpatrick needs at least one point",
                           "kirkpatrick");
  msearch::validate_points_in_bounds(points_, "kirkpatrick");
  msearch::validate_points_distinct(points_, "kirkpatrick");
  rebuild_hierarchy();
}

void Kirkpatrick::rebuild_hierarchy() {
  const Triangulation tin(points_, radius_);
  verts_ = tin.vertices();
  levels_.clear();

  Level finest;
  for (const auto id : tin.alive_ids()) {
    const auto& t = tin.history()[static_cast<std::size_t>(id)];
    finest.tri.push_back(t.v);
  }
  finest.children.assign(finest.tri.size(), {});
  levels_.push_back(std::move(finest));

  std::vector<std::uint8_t> removed(verts_.size(), 0);
  while (levels_.back().tri.size() > 1) {
    levels_.push_back(coarsen(levels_.back(), removed, max_degree_));
  }
  build_dag();
}

msearch::StructureDelta Kirkpatrick::apply_updates(
    const std::vector<Point2>& inserts, const std::vector<Point2>& deletes) {
  constexpr const char* kSite = "kirkpatrick.apply_updates";
  auto same = [](const Point2& a, const Point2& b) {
    return a.x == b.x && a.y == b.y;
  };
  // Validate the whole batch before mutating anything.
  std::vector<std::uint8_t> doomed(points_.size(), 0);
  for (std::size_t i = 0; i < deletes.size(); ++i) {
    bool found = false;
    for (std::size_t j = 0; j < points_.size() && !found; ++j) {
      if (!same(deletes[i], points_[j])) continue;
      if (doomed[j])
        msearch::invalid_input(
            "duplicate delete of point " + std::to_string(i), kSite);
      doomed[j] = 1;
      found = true;
    }
    if (!found)
      msearch::invalid_input(
          "delete " + std::to_string(i) + " names an absent point", kSite);
  }
  msearch::validate_points_in_bounds(inserts, kSite);
  for (std::size_t i = 0; i < inserts.size(); ++i) {
    for (std::size_t j = 0; j < points_.size(); ++j)
      if (!doomed[j] && same(inserts[i], points_[j]))
        msearch::invalid_input(
            "insert " + std::to_string(i) + " duplicates a live point",
            kSite);
    for (std::size_t i2 = 0; i2 < i; ++i2)
      if (same(inserts[i], inserts[i2]))
        msearch::invalid_input(
            "duplicate insert of point " + std::to_string(i), kSite);
  }
  // Inserts land in the slots the deletes freed (leftovers append): the
  // point ORDER is preserved, so the deterministic re-triangulation makes
  // delete + re-insert of the same point an exact fixed point of the
  // hierarchy — the payload-only diff below then reports an empty dirty
  // set instead of a spurious topology change.
  std::vector<Point2> next;
  next.reserve(points_.size() + inserts.size());
  std::size_t ins = 0;
  for (std::size_t j = 0; j < points_.size(); ++j) {
    if (!doomed[j])
      next.push_back(points_[j]);
    else if (ins < inserts.size())
      next.push_back(inserts[ins++]);
  }
  for (; ins < inserts.size(); ++ins) next.push_back(inserts[ins]);
  if (next.empty())
    msearch::invalid_input("update batch would empty the point set", kSite);

  // Re-triangulate the whole hierarchy from the new point set and diff the
  // resulting slot DAG against the old one.
  const std::vector<msearch::VertexRecord> before = dag_.verts();
  points_ = std::move(next);
  rebuild_hierarchy();

  msearch::StructureDelta delta;
  delta.inserts = inserts.size();
  delta.deletes = deletes.size();
  bool same_shape = dag_.vertex_count() == before.size();
  for (std::size_t v = 0; same_shape && v < before.size(); ++v) {
    const auto& a = before[v];
    const auto& b = dag_.vert(static_cast<msearch::Vid>(v));
    same_shape = a.level == b.level && a.degree == b.degree && a.nbr == b.nbr;
  }
  if (same_shape) {
    for (std::size_t v = 0; v < before.size(); ++v)
      if (dag_.vert(static_cast<msearch::Vid>(v)).key != before[v].key)
        delta.dirty_vertices.push_back(static_cast<msearch::Vid>(v));
  } else {
    delta.topology_changed = true;
  }
  dag_.bump_generation();
  delta.generation = dag_.generation();
  return delta;
}

Kirkpatrick::Level Kirkpatrick::coarsen(const Level& fine,
                                        std::vector<std::uint8_t>& removed_flag,
                                        unsigned max_degree) {
  // Incidence lists over the current vertex set.
  std::vector<std::vector<std::int32_t>> inc(verts_.size());
  for (std::size_t j = 0; j < fine.tri.size(); ++j)
    for (const auto v : fine.tri[j])
      inc[static_cast<std::size_t>(v)].push_back(static_cast<std::int32_t>(j));

  // Independent set of interior (non-bounding) vertices, degree-capped;
  // escalate the cap if a round selects nothing (tiny levels).
  std::vector<std::int32_t> selected;
  std::vector<std::uint8_t> blocked(verts_.size(), 0);
  unsigned cap = max_degree;
  while (selected.empty()) {
    for (std::size_t v = 3; v < verts_.size(); ++v) {
      if (inc[v].empty() || blocked[v] || removed_flag[v]) continue;
      if (inc[v].size() > cap) continue;
      selected.push_back(static_cast<std::int32_t>(v));
      for (const auto t : inc[v])
        for (const auto w : fine.tri[static_cast<std::size_t>(t)])
          blocked[static_cast<std::size_t>(w)] = 1;
    }
    if (selected.empty()) {
      bool any_interior = false;
      for (std::size_t v = 3; v < verts_.size() && !any_interior; ++v)
        any_interior = !inc[v].empty() && !removed_flag[v];
      MS_CHECK_MSG(any_interior, "coarsen called on the bounding triangle");
      cap += 4;
      MS_CHECK_MSG(cap <= 64, "could not find a removable vertex");
    }
  }

  Level coarse;
  std::vector<std::uint8_t> in_star(fine.tri.size(), 0);
  for (const auto v : selected) {
    removed_flag[static_cast<std::size_t>(v)] = 1;
    for (const auto t : inc[static_cast<std::size_t>(v)])
      in_star[static_cast<std::size_t>(t)] = 1;
  }
  // Unchanged triangles survive with a single child link.
  for (std::size_t j = 0; j < fine.tri.size(); ++j) {
    if (in_star[j]) continue;
    coarse.tri.push_back(fine.tri[j]);
    coarse.children.push_back({static_cast<std::int32_t>(j)});
  }
  // Retriangulate each removed vertex's star-shaped hole.
  for (const auto v : selected) {
    const auto& star = inc[static_cast<std::size_t>(v)];
    // Hole boundary: the edge opposite v in each star triangle, oriented ccw.
    std::map<std::int32_t, std::int32_t> succ;
    for (const auto t : star) {
      const auto& tv = fine.tri[static_cast<std::size_t>(t)];
      std::size_t k = 0;
      while (tv[k] != v) ++k;
      succ[tv[(k + 1) % 3]] = tv[(k + 2) % 3];
    }
    std::vector<std::int32_t> poly;
    poly.push_back(succ.begin()->first);
    while (poly.size() < succ.size())
      poly.push_back(succ[poly.back()]);
    MS_CHECK_MSG(succ[poly.back()] == poly.front(),
                 "star boundary is not a single cycle");
    const auto new_tris = ear_clip(std::move(poly), verts_);
    for (const auto& nt : new_tris) {
      std::vector<std::int32_t> kids;
      const std::array<Point2, 3> tn{
          verts_[static_cast<std::size_t>(nt[0])],
          verts_[static_cast<std::size_t>(nt[1])],
          verts_[static_cast<std::size_t>(nt[2])]};
      for (const auto t : star) {
        const auto& tv = fine.tri[static_cast<std::size_t>(t)];
        const std::array<Point2, 3> to{
            verts_[static_cast<std::size_t>(tv[0])],
            verts_[static_cast<std::size_t>(tv[1])],
            verts_[static_cast<std::size_t>(tv[2])]};
        if (triangles_overlap(tn, to)) kids.push_back(t);
      }
      MS_CHECK_MSG(!kids.empty(), "hole triangle overlaps no star triangle");
      coarse.tri.push_back(nt);
      coarse.children.push_back(std::move(kids));
    }
  }
  return coarse;
}

void Kirkpatrick::build_dag() {
  const std::size_t S = levels_.size() - 1;  // coarsest level index
  MS_CHECK(levels_[S].tri.size() == 1);

  // Pass 1: assign slot vids. Root = 0; then transitions s = S..1, slots in
  // (parent, child-position) order. head[s][parent] = first slot vid of the
  // parent's chain in transition s (children live at level s-1).
  std::size_t total = 1;
  std::vector<std::vector<std::int32_t>> head(S + 1);
  for (std::size_t s = S; s >= 1; --s) {
    head[s].assign(levels_[s].tri.size(), -1);
    for (std::size_t j = 0; j < levels_[s].tri.size(); ++j) {
      head[s][j] = static_cast<std::int32_t>(total);
      total += levels_[s].children[j].size();
    }
  }
  const std::uint64_t gen = dag_.generation();
  dag_ = msearch::DistributedGraph(total);
  dag_.set_generation(gen);

  // Root slot: the bounding triangle, descending into its chain.
  {
    auto& rec = dag_.vert(0);
    rec.level = 0;
    const auto& tv = levels_[S].tri[0];
    for (int k = 0; k < 3; ++k) {
      rec.key[2 * k] = verts_[static_cast<std::size_t>(tv[static_cast<std::size_t>(k)])].x;
      rec.key[2 * k + 1] = verts_[static_cast<std::size_t>(tv[static_cast<std::size_t>(k)])].y;
    }
    rec.key[6] = 2;  // descend only
    rec.key[7] = 0;
  }
  dag_.add_edge(0, head[S][0]);

  std::int32_t max_chain = 1;
  for (std::size_t s = S; s >= 1; --s) {
    const std::int32_t dag_level = static_cast<std::int32_t>(S - s + 1);
    for (std::size_t j = 0; j < levels_[s].tri.size(); ++j) {
      const auto& kids = levels_[s].children[j];
      max_chain = std::max(max_chain, static_cast<std::int32_t>(kids.size()));
      for (std::size_t k = 0; k < kids.size(); ++k) {
        const auto vid = head[s][j] + static_cast<std::int32_t>(k);
        auto& rec = dag_.vert(vid);
        rec.level = dag_level;
        const auto child = kids[k];
        const auto& tv = levels_[s - 1].tri[static_cast<std::size_t>(child)];
        for (int c = 0; c < 3; ++c) {
          const auto& p =
              verts_[static_cast<std::size_t>(tv[static_cast<std::size_t>(c)])];
          rec.key[2 * c] = p.x;
          rec.key[2 * c + 1] = p.y;
        }
        rec.key[7] = child;
        std::int64_t flags = 0;
        if (k + 1 < kids.size()) {
          flags |= 1;  // chain next
          dag_.add_edge(vid, vid + 1);
        }
        if (s >= 2) {
          flags |= 2;  // descend
          dag_.add_edge(vid, head[s - 1][static_cast<std::size_t>(child)]);
        }
        rec.key[6] = flags;
      }
    }
  }
  dag_.validate();

  level_work_ = 2 * max_chain;
  // Measured growth ratio of DAG level sizes (DAG levels run 0..S).
  std::vector<std::size_t> level_size(S + 1, 0);
  for (const auto& v : dag_.verts())
    ++level_size[static_cast<std::size_t>(v.level)];
  mu_ = std::pow(static_cast<double>(level_size[S]) /
                     static_cast<double>(level_size[0]),
                 1.0 / static_cast<double>(S));
  mu_ = std::max(mu_, 1.05);
}

std::array<Point2, 3> Kirkpatrick::finest_corners(std::int32_t id) const {
  const auto& tv = levels_.front().tri[static_cast<std::size_t>(id)];
  return {verts_[static_cast<std::size_t>(tv[0])],
          verts_[static_cast<std::size_t>(tv[1])],
          verts_[static_cast<std::size_t>(tv[2])]};
}

msearch::Vid Kirkpatrick::PointLocate::next(const msearch::VertexRecord& v,
                                            msearch::Query& q) const {
  const Point2 p{q.key[0], q.key[1]};
  const Point2 a{v.key[0], v.key[1]}, b{v.key[2], v.key[3]},
      c{v.key[4], v.key[5]};
  if (point_in_triangle(p, a, b, c)) {
    if (v.key[6] & 2) return v.nbr[(v.key[6] & 1) ? 1 : 0];  // descend
    q.result = static_cast<std::int32_t>(v.key[7]);
    q.acc0 = v.key[7];
    return msearch::kNoVertex;
  }
  if (v.level == 0) {  // outside the bounding triangle entirely
    q.result = kOutside;
    return msearch::kNoVertex;
  }
  MS_CHECK_MSG(v.key[6] & 1, "point location fell off a chain");
  return v.nbr[0];
}

bool Kirkpatrick::answer_contains_point(const msearch::Query& q) const {
  if (q.result < 0 ||
      static_cast<std::size_t>(q.result) >= levels_.front().tri.size())
    return false;
  const auto t = finest_corners(q.result);
  return point_in_triangle(Point2{q.key[0], q.key[1]}, t[0], t[1], t[2]);
}

}  // namespace meshsearch::geom
