// 2-d convex hulls (Andrew's monotone chain) and convex-polygon workload
// generators. Substrate for the Dobkin–Kirkpatrick polygon hierarchy (§5).
#pragma once

#include <vector>

#include "geometry/predicates.hpp"
#include "util/rng.hpp"

namespace meshsearch::geom {

/// Convex hull of `pts` in counter-clockwise order, collinear points on the
/// hull boundary removed. Duplicates allowed in the input.
std::vector<Point2> convex_hull(std::vector<Point2> pts);

/// True iff `poly` is convex, counter-clockwise, with no three consecutive
/// collinear vertices.
bool is_strictly_convex_ccw(const std::vector<Point2>& poly);

/// A convex polygon with `target` vertices (or slightly fewer after hulling)
/// sampled on an integer circle of the given radius.
std::vector<Point2> random_convex_polygon(std::size_t target, Scalar radius,
                                          util::Rng& rng);

/// `count` points uniform in the disk of the given radius.
std::vector<Point2> random_points_in_disk(std::size_t count, Scalar radius,
                                          util::Rng& rng);

}  // namespace meshsearch::geom
