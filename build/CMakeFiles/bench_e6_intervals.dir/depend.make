# Empty dependencies file for bench_e6_intervals.
# This may be replaced when dependencies are built.
