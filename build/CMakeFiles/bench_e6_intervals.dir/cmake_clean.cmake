file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_intervals.dir/bench/bench_e6_intervals.cpp.o"
  "CMakeFiles/bench_e6_intervals.dir/bench/bench_e6_intervals.cpp.o.d"
  "bench/bench_e6_intervals"
  "bench/bench_e6_intervals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_intervals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
