file(REMOVE_RECURSE
  "CMakeFiles/bench_v1_engines.dir/bench/bench_v1_engines.cpp.o"
  "CMakeFiles/bench_v1_engines.dir/bench/bench_v1_engines.cpp.o.d"
  "bench/bench_v1_engines"
  "bench/bench_v1_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_v1_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
