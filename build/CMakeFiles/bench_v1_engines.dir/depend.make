# Empty dependencies file for bench_v1_engines.
# This may be replaced when dependencies are built.
