# Empty compiler generated dependencies file for bench_e5_geometry.
# This may be replaced when dependencies are built.
