file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_geometry.dir/bench/bench_e5_geometry.cpp.o"
  "CMakeFiles/bench_e5_geometry.dir/bench/bench_e5_geometry.cpp.o.d"
  "bench/bench_e5_geometry"
  "bench/bench_e5_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
