# Empty dependencies file for bench_e1_hierarchical.
# This may be replaced when dependencies are built.
