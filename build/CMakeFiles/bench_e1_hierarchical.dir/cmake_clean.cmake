file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_hierarchical.dir/bench/bench_e1_hierarchical.cpp.o"
  "CMakeFiles/bench_e1_hierarchical.dir/bench/bench_e1_hierarchical.cpp.o.d"
  "bench/bench_e1_hierarchical"
  "bench/bench_e1_hierarchical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_hierarchical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
