# Empty dependencies file for bench_e2_constrained.
# This may be replaced when dependencies are built.
