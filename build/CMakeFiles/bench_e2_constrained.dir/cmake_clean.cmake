file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_constrained.dir/bench/bench_e2_constrained.cpp.o"
  "CMakeFiles/bench_e2_constrained.dir/bench/bench_e2_constrained.cpp.o.d"
  "bench/bench_e2_constrained"
  "bench/bench_e2_constrained.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_constrained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
