file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_ablation.dir/bench/bench_e7_ablation.cpp.o"
  "CMakeFiles/bench_e7_ablation.dir/bench/bench_e7_ablation.cpp.o.d"
  "bench/bench_e7_ablation"
  "bench/bench_e7_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
