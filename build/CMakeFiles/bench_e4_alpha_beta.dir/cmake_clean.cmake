file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_alpha_beta.dir/bench/bench_e4_alpha_beta.cpp.o"
  "CMakeFiles/bench_e4_alpha_beta.dir/bench/bench_e4_alpha_beta.cpp.o.d"
  "bench/bench_e4_alpha_beta"
  "bench/bench_e4_alpha_beta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_alpha_beta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
