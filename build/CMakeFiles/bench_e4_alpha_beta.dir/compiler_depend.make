# Empty compiler generated dependencies file for bench_e4_alpha_beta.
# This may be replaced when dependencies are built.
