file(REMOVE_RECURSE
  "CMakeFiles/bench_figures.dir/bench/bench_figures.cpp.o"
  "CMakeFiles/bench_figures.dir/bench/bench_figures.cpp.o.d"
  "bench/bench_figures"
  "bench/bench_figures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
