# Empty compiler generated dependencies file for bench_e3_alpha.
# This may be replaced when dependencies are built.
