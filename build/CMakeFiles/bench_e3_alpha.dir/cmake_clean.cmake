file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_alpha.dir/bench/bench_e3_alpha.cpp.o"
  "CMakeFiles/bench_e3_alpha.dir/bench/bench_e3_alpha.cpp.o.d"
  "bench/bench_e3_alpha"
  "bench/bench_e3_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
