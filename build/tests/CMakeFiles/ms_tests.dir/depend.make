# Empty dependencies file for ms_tests.
# This may be replaced when dependencies are built.
