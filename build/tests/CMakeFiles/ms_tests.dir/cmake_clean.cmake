file(REMOVE_RECURSE
  "CMakeFiles/ms_tests.dir/test_cycle_ops.cpp.o"
  "CMakeFiles/ms_tests.dir/test_cycle_ops.cpp.o.d"
  "CMakeFiles/ms_tests.dir/test_datastruct.cpp.o"
  "CMakeFiles/ms_tests.dir/test_datastruct.cpp.o.d"
  "CMakeFiles/ms_tests.dir/test_geometry.cpp.o"
  "CMakeFiles/ms_tests.dir/test_geometry.cpp.o.d"
  "CMakeFiles/ms_tests.dir/test_grid.cpp.o"
  "CMakeFiles/ms_tests.dir/test_grid.cpp.o.d"
  "CMakeFiles/ms_tests.dir/test_hierarchies.cpp.o"
  "CMakeFiles/ms_tests.dir/test_hierarchies.cpp.o.d"
  "CMakeFiles/ms_tests.dir/test_mesh.cpp.o"
  "CMakeFiles/ms_tests.dir/test_mesh.cpp.o.d"
  "CMakeFiles/ms_tests.dir/test_multisearch.cpp.o"
  "CMakeFiles/ms_tests.dir/test_multisearch.cpp.o.d"
  "CMakeFiles/ms_tests.dir/test_property.cpp.o"
  "CMakeFiles/ms_tests.dir/test_property.cpp.o.d"
  "CMakeFiles/ms_tests.dir/test_trees2.cpp.o"
  "CMakeFiles/ms_tests.dir/test_trees2.cpp.o.d"
  "CMakeFiles/ms_tests.dir/test_util.cpp.o"
  "CMakeFiles/ms_tests.dir/test_util.cpp.o.d"
  "ms_tests"
  "ms_tests.pdb"
  "ms_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ms_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
