
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cycle_ops.cpp" "tests/CMakeFiles/ms_tests.dir/test_cycle_ops.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_cycle_ops.cpp.o.d"
  "/root/repo/tests/test_datastruct.cpp" "tests/CMakeFiles/ms_tests.dir/test_datastruct.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_datastruct.cpp.o.d"
  "/root/repo/tests/test_geometry.cpp" "tests/CMakeFiles/ms_tests.dir/test_geometry.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_geometry.cpp.o.d"
  "/root/repo/tests/test_grid.cpp" "tests/CMakeFiles/ms_tests.dir/test_grid.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_grid.cpp.o.d"
  "/root/repo/tests/test_hierarchies.cpp" "tests/CMakeFiles/ms_tests.dir/test_hierarchies.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_hierarchies.cpp.o.d"
  "/root/repo/tests/test_mesh.cpp" "tests/CMakeFiles/ms_tests.dir/test_mesh.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_mesh.cpp.o.d"
  "/root/repo/tests/test_multisearch.cpp" "tests/CMakeFiles/ms_tests.dir/test_multisearch.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_multisearch.cpp.o.d"
  "/root/repo/tests/test_property.cpp" "tests/CMakeFiles/ms_tests.dir/test_property.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_property.cpp.o.d"
  "/root/repo/tests/test_trees2.cpp" "tests/CMakeFiles/ms_tests.dir/test_trees2.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_trees2.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/ms_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/ms_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/meshsearch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
