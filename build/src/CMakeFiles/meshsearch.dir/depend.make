# Empty dependencies file for meshsearch.
# This may be replaced when dependencies are built.
