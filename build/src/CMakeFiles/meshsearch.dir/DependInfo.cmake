
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datastruct/interval_tree.cpp" "src/CMakeFiles/meshsearch.dir/datastruct/interval_tree.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/datastruct/interval_tree.cpp.o.d"
  "/root/repo/src/datastruct/kary_tree.cpp" "src/CMakeFiles/meshsearch.dir/datastruct/kary_tree.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/datastruct/kary_tree.cpp.o.d"
  "/root/repo/src/datastruct/segment_tree.cpp" "src/CMakeFiles/meshsearch.dir/datastruct/segment_tree.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/datastruct/segment_tree.cpp.o.d"
  "/root/repo/src/datastruct/twothree_tree.cpp" "src/CMakeFiles/meshsearch.dir/datastruct/twothree_tree.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/datastruct/twothree_tree.cpp.o.d"
  "/root/repo/src/datastruct/workloads.cpp" "src/CMakeFiles/meshsearch.dir/datastruct/workloads.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/datastruct/workloads.cpp.o.d"
  "/root/repo/src/geometry/dk_hierarchy.cpp" "src/CMakeFiles/meshsearch.dir/geometry/dk_hierarchy.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/geometry/dk_hierarchy.cpp.o.d"
  "/root/repo/src/geometry/dk_polygon.cpp" "src/CMakeFiles/meshsearch.dir/geometry/dk_polygon.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/geometry/dk_polygon.cpp.o.d"
  "/root/repo/src/geometry/hull2d.cpp" "src/CMakeFiles/meshsearch.dir/geometry/hull2d.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/geometry/hull2d.cpp.o.d"
  "/root/repo/src/geometry/hull3d.cpp" "src/CMakeFiles/meshsearch.dir/geometry/hull3d.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/geometry/hull3d.cpp.o.d"
  "/root/repo/src/geometry/kirkpatrick.cpp" "src/CMakeFiles/meshsearch.dir/geometry/kirkpatrick.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/geometry/kirkpatrick.cpp.o.d"
  "/root/repo/src/geometry/predicates.cpp" "src/CMakeFiles/meshsearch.dir/geometry/predicates.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/geometry/predicates.cpp.o.d"
  "/root/repo/src/geometry/triangulate.cpp" "src/CMakeFiles/meshsearch.dir/geometry/triangulate.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/geometry/triangulate.cpp.o.d"
  "/root/repo/src/mesh/cost.cpp" "src/CMakeFiles/meshsearch.dir/mesh/cost.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/mesh/cost.cpp.o.d"
  "/root/repo/src/mesh/cycle_ops.cpp" "src/CMakeFiles/meshsearch.dir/mesh/cycle_ops.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/mesh/cycle_ops.cpp.o.d"
  "/root/repo/src/mesh/grid.cpp" "src/CMakeFiles/meshsearch.dir/mesh/grid.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/mesh/grid.cpp.o.d"
  "/root/repo/src/mesh/ops.cpp" "src/CMakeFiles/meshsearch.dir/mesh/ops.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/mesh/ops.cpp.o.d"
  "/root/repo/src/mesh/snake.cpp" "src/CMakeFiles/meshsearch.dir/mesh/snake.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/mesh/snake.cpp.o.d"
  "/root/repo/src/mesh/submesh.cpp" "src/CMakeFiles/meshsearch.dir/mesh/submesh.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/mesh/submesh.cpp.o.d"
  "/root/repo/src/multisearch/constrained.cpp" "src/CMakeFiles/meshsearch.dir/multisearch/constrained.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/multisearch/constrained.cpp.o.d"
  "/root/repo/src/multisearch/graph.cpp" "src/CMakeFiles/meshsearch.dir/multisearch/graph.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/multisearch/graph.cpp.o.d"
  "/root/repo/src/multisearch/hierarchical.cpp" "src/CMakeFiles/meshsearch.dir/multisearch/hierarchical.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/multisearch/hierarchical.cpp.o.d"
  "/root/repo/src/multisearch/partitioned.cpp" "src/CMakeFiles/meshsearch.dir/multisearch/partitioned.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/multisearch/partitioned.cpp.o.d"
  "/root/repo/src/multisearch/query.cpp" "src/CMakeFiles/meshsearch.dir/multisearch/query.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/multisearch/query.cpp.o.d"
  "/root/repo/src/multisearch/sequential.cpp" "src/CMakeFiles/meshsearch.dir/multisearch/sequential.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/multisearch/sequential.cpp.o.d"
  "/root/repo/src/multisearch/setup.cpp" "src/CMakeFiles/meshsearch.dir/multisearch/setup.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/multisearch/setup.cpp.o.d"
  "/root/repo/src/multisearch/splitter.cpp" "src/CMakeFiles/meshsearch.dir/multisearch/splitter.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/multisearch/splitter.cpp.o.d"
  "/root/repo/src/multisearch/synchronous.cpp" "src/CMakeFiles/meshsearch.dir/multisearch/synchronous.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/multisearch/synchronous.cpp.o.d"
  "/root/repo/src/util/parallel_for.cpp" "src/CMakeFiles/meshsearch.dir/util/parallel_for.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/util/parallel_for.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/meshsearch.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/meshsearch.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/meshsearch.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/meshsearch.dir/util/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
