file(REMOVE_RECURSE
  "libmeshsearch.a"
)
