file(REMOVE_RECURSE
  "CMakeFiles/example_mesh_machine.dir/mesh_machine.cpp.o"
  "CMakeFiles/example_mesh_machine.dir/mesh_machine.cpp.o.d"
  "example_mesh_machine"
  "example_mesh_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mesh_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
