# Empty compiler generated dependencies file for example_mesh_machine.
# This may be replaced when dependencies are built.
