# Empty compiler generated dependencies file for example_tangent_planes.
# This may be replaced when dependencies are built.
