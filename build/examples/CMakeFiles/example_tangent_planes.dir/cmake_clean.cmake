file(REMOVE_RECURSE
  "CMakeFiles/example_tangent_planes.dir/tangent_planes.cpp.o"
  "CMakeFiles/example_tangent_planes.dir/tangent_planes.cpp.o.d"
  "example_tangent_planes"
  "example_tangent_planes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tangent_planes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
