file(REMOVE_RECURSE
  "CMakeFiles/example_point_location.dir/point_location.cpp.o"
  "CMakeFiles/example_point_location.dir/point_location.cpp.o.d"
  "example_point_location"
  "example_point_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_point_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
