# Empty dependencies file for example_point_location.
# This may be replaced when dependencies are built.
