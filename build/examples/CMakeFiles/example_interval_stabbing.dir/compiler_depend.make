# Empty compiler generated dependencies file for example_interval_stabbing.
# This may be replaced when dependencies are built.
