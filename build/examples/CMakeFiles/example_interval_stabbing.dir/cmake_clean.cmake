file(REMOVE_RECURSE
  "CMakeFiles/example_interval_stabbing.dir/interval_stabbing.cpp.o"
  "CMakeFiles/example_interval_stabbing.dir/interval_stabbing.cpp.o.d"
  "example_interval_stabbing"
  "example_interval_stabbing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_interval_stabbing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
